//! Simulated MPI: brick domain decomposition with rank threads.
//!
//! LAMMPS' scalability rests on a spatial decomposition: each MPI rank
//! owns a brick of the box, migrates atoms that cross brick boundaries,
//! and exchanges halo (ghost) copies with neighbors every step. Real
//! MPI at 8192 nodes is a hardware gate in this environment, so this
//! module provides the *functional* substitute (DESIGN.md §2): ranks
//! run as OS threads in a bulk-synchronous loop, publishing halo and
//! migration messages to per-rank mailboxes separated by barriers.
//!
//! Correctness — not speed — is the goal here (the timing model for
//! Figures 6-7 lives in `lkk-machine`): halo search is brute-force over
//! published atoms, which keeps the exchange logic transparent and easy
//! to verify against single-rank runs (see the integration tests).

use crate::domain::Domain;
use crate::pair::lj::LjCut;
use crate::pair::TwoBody;
use std::sync::{Barrier, Mutex};

/// A 3-D brick decomposition of a periodic box.
#[derive(Debug, Clone)]
pub struct BrickDecomp {
    pub grid: [usize; 3],
    pub global: Domain,
}

impl BrickDecomp {
    /// Factor `nranks` into a near-cubic grid (largest factors last, as
    /// LAMMPS' `procs_grid` does for a cubic box).
    pub fn new(global: Domain, nranks: usize) -> Self {
        assert!(nranks > 0);
        let mut best = [1, 1, nranks];
        let mut best_score = f64::INFINITY;
        for px in 1..=nranks {
            if !nranks.is_multiple_of(px) {
                continue;
            }
            let rem = nranks / px;
            for py in 1..=rem {
                if !rem.is_multiple_of(py) {
                    continue;
                }
                let pz = rem / py;
                let l = global.lengths();
                let dims = [l[0] / px as f64, l[1] / py as f64, l[2] / pz as f64];
                // Score: surface-to-volume of a sub-brick (lower = better).
                let s = 2.0 * (dims[0] * dims[1] + dims[1] * dims[2] + dims[0] * dims[2])
                    / (dims[0] * dims[1] * dims[2]);
                if s < best_score {
                    best_score = s;
                    best = [px, py, pz];
                }
            }
        }
        BrickDecomp { grid: best, global }
    }

    pub fn nranks(&self) -> usize {
        self.grid.iter().product()
    }

    /// The brick owned by `rank` (x-major ordering).
    pub fn subdomain(&self, rank: usize) -> Domain {
        let [px, py, pz] = self.grid;
        let ix = rank / (py * pz);
        let iy = (rank / pz) % py;
        let iz = rank % pz;
        let l = self.global.lengths();
        let lo = [
            self.global.lo[0] + l[0] * ix as f64 / px as f64,
            self.global.lo[1] + l[1] * iy as f64 / py as f64,
            self.global.lo[2] + l[2] * iz as f64 / pz as f64,
        ];
        let hi = [
            self.global.lo[0] + l[0] * (ix + 1) as f64 / px as f64,
            self.global.lo[1] + l[1] * (iy + 1) as f64 / py as f64,
            self.global.lo[2] + l[2] * (iz + 1) as f64 / pz as f64,
        ];
        Domain::new(lo, hi)
    }

    /// Which rank owns a (wrapped) position.
    pub fn rank_of(&self, x: &[f64; 3]) -> usize {
        let [px, py, pz] = self.grid;
        let l = self.global.lengths();
        let idx = |k: usize, p: usize| -> usize {
            let t = ((x[k] - self.global.lo[k]) / l[k] * p as f64) as isize;
            t.clamp(0, p as isize - 1) as usize
        };
        (idx(0, px) * py + idx(1, py)) * pz + idx(2, pz)
    }
}

/// A migrating/halo atom message.
#[derive(Debug, Clone, Copy)]
struct AtomMsg {
    tag: i64,
    x: [f64; 3],
    v: [f64; 3],
}

/// Final per-atom state keyed by global tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomState {
    pub tag: i64,
    pub x: [f64; 3],
    pub v: [f64; 3],
}

/// Run an NVE Lennard-Jones simulation decomposed over `nranks`
/// simulated MPI ranks (see [`run_decomposed`] for the generic driver).
pub fn run_lj_decomposed(
    positions: &[[f64; 3]],
    velocities: &[[f64; 3]],
    global: Domain,
    lj: LjCut,
    nranks: usize,
    nsteps: usize,
    dt: f64,
) -> (Vec<AtomState>, Vec<f64>) {
    run_decomposed(positions, velocities, global, lj, nranks, nsteps, dt)
}

/// Run an NVE simulation of any [`TwoBody`] potential decomposed over
/// `nranks` simulated MPI ranks, and return the final atom states
/// (sorted by tag) plus the per-step total potential energy.
///
/// This is the functional counterpart of the single-rank
/// [`crate::sim::Simulation`]; integration tests assert both produce
/// the same trajectory.
pub fn run_decomposed<P: TwoBody + Clone>(
    positions: &[[f64; 3]],
    velocities: &[[f64; 3]],
    global: Domain,
    lj: P,
    nranks: usize,
    nsteps: usize,
    dt: f64,
) -> (Vec<AtomState>, Vec<f64>) {
    let decomp = BrickDecomp::new(global, nranks);
    let nranks = decomp.nranks();
    let cut = lj.max_cutoff();
    let cutsq = cut * cut;

    // Initial ownership.
    let mut owned: Vec<Vec<AtomMsg>> = vec![Vec::new(); nranks];
    for (i, (&x, &v)) in positions.iter().zip(velocities).enumerate() {
        let mut xw = x;
        global.wrap(&mut xw);
        owned[decomp.rank_of(&xw)].push(AtomMsg {
            tag: i as i64 + 1,
            x: xw,
            v,
        });
    }

    // Mailboxes: `halo_posts[r]` = atoms rank r publishes this step;
    // `migrate_posts[r][dest]` = atoms leaving r for dest.
    let halo_posts: Vec<Mutex<Vec<AtomMsg>>> =
        (0..nranks).map(|_| Mutex::new(Vec::new())).collect();
    let migrate_posts: Vec<Mutex<Vec<AtomMsg>>> =
        (0..nranks).map(|_| Mutex::new(Vec::new())).collect();
    let energy_posts: Vec<Mutex<f64>> = (0..nranks).map(|_| Mutex::new(0.0)).collect();
    let barrier = Barrier::new(nranks);
    let energies = Mutex::new(vec![0.0f64; nsteps]);

    std::thread::scope(|scope| {
        for (rank, mut mine) in owned.drain(..).enumerate() {
            let decomp = &decomp;
            let halo_posts = &halo_posts;
            let migrate_posts = &migrate_posts;
            let energy_posts = &energy_posts;
            let barrier = &barrier;
            let energies = &energies;
            let lj = &lj;
            scope.spawn(move || {
                let sub = decomp.subdomain(rank);
                let l = global.lengths();
                for step in 0..nsteps {
                    // Phase 1: publish migrations (first half-kick + drift
                    // happen *after* forces exist; on step 0 forces are 0,
                    // matching velocity-Verlet startup with F(0) computed
                    // below and the kick applied from step 1 on; we instead
                    // compute forces first, below).
                    // --- publish halo: all owned atoms ---
                    *halo_posts[rank].lock().unwrap() = mine.clone();
                    barrier.wait();

                    // --- gather ghosts: any published atom (incl. own
                    //     periodic images) within `cut` of this brick ---
                    let mut ghosts: Vec<AtomMsg> = Vec::new();
                    for (src, post) in halo_posts.iter().enumerate() {
                        let atoms = post.lock().unwrap();
                        for a in atoms.iter() {
                            for sx in -1i32..=1 {
                                for sy in -1i32..=1 {
                                    for sz in -1i32..=1 {
                                        if src == rank && sx == 0 && sy == 0 && sz == 0 {
                                            continue;
                                        }
                                        let xs = [
                                            a.x[0] + sx as f64 * l[0],
                                            a.x[1] + sy as f64 * l[1],
                                            a.x[2] + sz as f64 * l[2],
                                        ];
                                        let near = (0..3).all(|k| {
                                            xs[k] > sub.lo[k] - cut && xs[k] < sub.hi[k] + cut
                                        });
                                        // Skip copies interior to another
                                        // rank's brick that are not near us.
                                        if near && !(src == rank && sub.contains(&xs)) {
                                            ghosts.push(AtomMsg { x: xs, ..*a });
                                        }
                                    }
                                }
                            }
                        }
                    }
                    barrier.wait();

                    // --- forces (full pairwise over owned × (owned+ghost),
                    //     one-sided, newton off across ranks) ---
                    let nloc = mine.len();
                    let mut forces = vec![[0.0f64; 3]; nloc];
                    let mut e_local = 0.0;
                    for i in 0..nloc {
                        let xi = mine[i].x;
                        let mut acc = [0.0f64; 3];
                        for (j, other) in mine.iter().enumerate() {
                            if i == j {
                                continue;
                            }
                            let d = [xi[0] - other.x[0], xi[1] - other.x[1], xi[2] - other.x[2]];
                            let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                            if rsq < cutsq {
                                let (fp, ev) = lj.pair(rsq, 0, 0);
                                for k in 0..3 {
                                    acc[k] += fp * d[k];
                                }
                                e_local += 0.5 * ev;
                            }
                        }
                        for g in &ghosts {
                            let d = [xi[0] - g.x[0], xi[1] - g.x[1], xi[2] - g.x[2]];
                            let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                            if rsq < cutsq {
                                let (fp, ev) = lj.pair(rsq, 0, 0);
                                for k in 0..3 {
                                    acc[k] += fp * d[k];
                                }
                                e_local += 0.5 * ev;
                            }
                        }
                        forces[i] = acc;
                    }
                    *energy_posts[rank].lock().unwrap() = e_local;
                    barrier.wait();
                    if rank == 0 {
                        let total: f64 = energy_posts.iter().map(|e| *e.lock().unwrap()).sum();
                        energies.lock().unwrap()[step] = total;
                    }

                    // --- velocity Verlet kick-drift-kick with F constant
                    //     over the step pair (leapfrog-equivalent): here we
                    //     use simple symplectic Euler-style splitting that
                    //     matches the single-rank driver's ordering:
                    //     v += F dt (full kick applied as two halves around
                    //     the force evaluation of the *next* step). For
                    //     cross-checking trajectories we use the exact same
                    //     update as `FixNve` driven externally: the caller
                    //     compares against a reference implementation with
                    //     identical ordering (see tests).
                    for (a, f) in mine.iter_mut().zip(&forces) {
                        for (k, &fk) in f.iter().enumerate() {
                            a.v[k] += dt * fk;
                            a.x[k] += dt * a.v[k];
                        }
                    }
                    // Wrap + migrate.
                    let mut keep = Vec::with_capacity(mine.len());
                    let mut outgoing: Vec<AtomMsg> = Vec::new();
                    for mut a in mine.drain(..) {
                        global.wrap(&mut a.x);
                        if sub.contains(&a.x) {
                            keep.push(a);
                        } else {
                            outgoing.push(a);
                        }
                    }
                    mine = keep;
                    *migrate_posts[rank].lock().unwrap() = outgoing;
                    barrier.wait();
                    for post in migrate_posts.iter() {
                        let atoms = post.lock().unwrap();
                        for a in atoms.iter() {
                            if decomp.rank_of(&a.x) == rank {
                                mine.push(*a);
                            }
                        }
                    }
                    barrier.wait();
                }
                // Final states.
                let mut out = halo_posts[rank].lock().unwrap();
                *out = mine;
            });
        }
    });

    let mut states: Vec<AtomState> = halo_posts
        .iter()
        .flat_map(|p| {
            p.lock()
                .unwrap()
                .iter()
                .map(|a| AtomState {
                    tag: a.tag,
                    x: a.x,
                    v: a.v,
                })
                .collect::<Vec<_>>()
        })
        .collect();
    states.sort_by_key(|s| s.tag);
    (states, energies.into_inner().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{Lattice, LatticeKind};

    #[test]
    fn grid_factorization_is_exact_and_near_cubic() {
        let d = Domain::cubic(10.0);
        for n in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            let b = BrickDecomp::new(d, n);
            assert_eq!(b.nranks(), n);
        }
        let b8 = BrickDecomp::new(d, 8);
        assert_eq!(b8.grid, [2, 2, 2]);
    }

    #[test]
    fn subdomains_tile_the_box() {
        let d = Domain::new([0.0; 3], [4.0, 6.0, 8.0]);
        let b = BrickDecomp::new(d, 6);
        let vol_total: f64 = (0..6).map(|r| b.subdomain(r).volume()).sum();
        assert!((vol_total - d.volume()).abs() < 1e-9);
        // Every point maps to the brick that contains it.
        for r in 0..6 {
            let s = b.subdomain(r);
            let mid = [
                0.5 * (s.lo[0] + s.hi[0]),
                0.5 * (s.lo[1] + s.hi[1]),
                0.5 * (s.lo[2] + s.hi[2]),
            ];
            assert_eq!(b.rank_of(&mid), r);
        }
    }

    /// A sequential reference implementing exactly the same (kick+drift)
    /// scheme as `run_lj_decomposed`, minimum-image, single rank.
    fn reference_run(
        positions: &[[f64; 3]],
        velocities: &[[f64; 3]],
        global: Domain,
        lj: &LjCut,
        nsteps: usize,
        dt: f64,
    ) -> (Vec<AtomState>, Vec<f64>) {
        let n = positions.len();
        let mut x: Vec<[f64; 3]> = positions.to_vec();
        for p in &mut x {
            global.wrap(p);
        }
        let mut v = velocities.to_vec();
        let cutsq = lj.max_cutoff() * lj.max_cutoff();
        let mut energies = vec![0.0; nsteps];
        for (step, e_out) in energies.iter_mut().enumerate() {
            let mut f = vec![[0.0f64; 3]; n];
            let mut e = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let d = global.min_image(&x[i], &x[j]);
                    let rsq = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    if rsq < cutsq {
                        let (fp, ev) = lj.pair(rsq, 0, 0);
                        for k in 0..3 {
                            f[i][k] += fp * d[k];
                        }
                        e += 0.5 * ev;
                    }
                }
            }
            *e_out = e;
            let _ = step;
            for i in 0..n {
                for k in 0..3 {
                    v[i][k] += dt * f[i][k];
                    x[i][k] += dt * v[i][k];
                }
                global.wrap(&mut x[i]);
            }
        }
        let states = (0..n)
            .map(|i| AtomState {
                tag: i as i64 + 1,
                x: x[i],
                v: v[i],
            })
            .collect();
        (states, energies)
    }

    #[test]
    fn decomposed_matches_reference_across_rank_counts() {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let positions = lat.positions(3, 3, 3);
        let global = lat.domain(3, 3, 3);
        // Perturb to get nonzero forces; deterministic pattern.
        let positions: Vec<[f64; 3]> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                [
                    p[0] + 0.05 * ((i * 7 % 13) as f64 / 13.0 - 0.5),
                    p[1] + 0.05 * ((i * 11 % 17) as f64 / 17.0 - 0.5),
                    p[2] + 0.05 * ((i * 5 % 19) as f64 / 19.0 - 0.5),
                ]
            })
            .collect();
        let velocities = vec![[0.0; 3]; positions.len()];
        let lj = LjCut::single_type(1.0, 1.0, 2.5);
        let (ref_states, ref_e) = reference_run(&positions, &velocities, global, &lj, 10, 0.002);
        for nranks in [1usize, 2, 4, 8] {
            let (states, e) = run_lj_decomposed(
                &positions,
                &velocities,
                global,
                lj.clone(),
                nranks,
                10,
                0.002,
            );
            assert_eq!(states.len(), ref_states.len(), "lost atoms at P={nranks}");
            for (a, b) in states.iter().zip(&ref_states) {
                assert_eq!(a.tag, b.tag);
                for k in 0..3 {
                    assert!(
                        (a.x[k] - b.x[k]).abs() < 1e-9,
                        "P={nranks} tag={} x[{k}]: {} vs {}",
                        a.tag,
                        a.x[k],
                        b.x[k]
                    );
                }
            }
            for (ea, eb) in e.iter().zip(&ref_e) {
                assert!((ea - eb).abs() < 1e-8 * eb.abs().max(1.0), "P={nranks}");
            }
        }
    }

    #[test]
    fn generic_driver_works_with_morse() {
        use crate::pair::morse::Morse;
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let positions = lat.positions(3, 3, 3);
        let velocities = vec![[0.0; 3]; positions.len()];
        let global = lat.domain(3, 3, 3);
        let pot = Morse::new(1.0, 2.0, 1.2, 2.5);
        let (s1, e1) = run_decomposed(&positions, &velocities, global, pot, 1, 4, 0.001);
        let (s4, e4) = run_decomposed(&positions, &velocities, global, pot, 4, 4, 0.001);
        for (a, b) in s1.iter().zip(&s4) {
            for k in 0..3 {
                assert!((a.x[k] - b.x[k]).abs() < 1e-10);
            }
        }
        for (a, b) in e1.iter().zip(&e4) {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        }
    }
}
