//! Brick domain decomposition for the simulated-MPI rank layer.
//!
//! LAMMPS' scalability rests on a spatial decomposition: each MPI rank
//! owns a brick of the box, migrates atoms that cross brick boundaries,
//! and exchanges halo (ghost) copies with neighbors every step. Real
//! MPI at 8192 nodes is a hardware gate in this environment, so the
//! repo provides the *functional* substitute (DESIGN.md §2): ranks run
//! as OS threads and exchange typed messages over channels.
//!
//! This module holds the geometry side — [`BrickDecomp`] factors a rank
//! count into a near-cubic grid and maps positions to owning ranks. The
//! communication layer built on it ([`crate::comm::brick::BrickComm`])
//! and the rank-parallel driver ([`crate::comm::brick::run_rank_parallel`])
//! live in `comm::brick`; the old free-function drivers here are kept
//! as deprecated shims over that driver.

use crate::comm::brick::{run_rank_parallel, RankParallelSpec};
use crate::domain::Domain;
use crate::pair::lj::LjCut;
use crate::pair::{PairKokkos, PairKokkosOptions, TwoBody};
use crate::sim::Simulation;
use lkk_kokkos::Space;

/// A 3-D brick decomposition of a periodic box.
#[derive(Debug, Clone)]
pub struct BrickDecomp {
    pub grid: [usize; 3],
    pub global: Domain,
}

impl BrickDecomp {
    /// Factor `nranks` into a near-cubic grid (largest factors last, as
    /// LAMMPS' `procs_grid` does for a cubic box).
    pub fn new(global: Domain, nranks: usize) -> Self {
        assert!(nranks > 0);
        let mut best = [1, 1, nranks];
        let mut best_score = f64::INFINITY;
        for px in 1..=nranks {
            if !nranks.is_multiple_of(px) {
                continue;
            }
            let rem = nranks / px;
            for py in 1..=rem {
                if !rem.is_multiple_of(py) {
                    continue;
                }
                let pz = rem / py;
                let l = global.lengths();
                let dims = [l[0] / px as f64, l[1] / py as f64, l[2] / pz as f64];
                // Score: surface-to-volume of a sub-brick (lower = better).
                let s = 2.0 * (dims[0] * dims[1] + dims[1] * dims[2] + dims[0] * dims[2])
                    / (dims[0] * dims[1] * dims[2]);
                if s < best_score {
                    best_score = s;
                    best = [px, py, pz];
                }
            }
        }
        BrickDecomp { grid: best, global }
    }

    pub fn nranks(&self) -> usize {
        self.grid.iter().product()
    }

    /// The brick owned by `rank` (x-major ordering).
    pub fn subdomain(&self, rank: usize) -> Domain {
        let [px, py, pz] = self.grid;
        let ix = rank / (py * pz);
        let iy = (rank / pz) % py;
        let iz = rank % pz;
        let l = self.global.lengths();
        let lo = [
            self.global.lo[0] + l[0] * ix as f64 / px as f64,
            self.global.lo[1] + l[1] * iy as f64 / py as f64,
            self.global.lo[2] + l[2] * iz as f64 / pz as f64,
        ];
        let hi = [
            self.global.lo[0] + l[0] * (ix + 1) as f64 / px as f64,
            self.global.lo[1] + l[1] * (iy + 1) as f64 / py as f64,
            self.global.lo[2] + l[2] * (iz + 1) as f64 / pz as f64,
        ];
        Domain::new(lo, hi)
    }

    /// Which rank owns a (wrapped) position.
    pub fn rank_of(&self, x: &[f64; 3]) -> usize {
        let [px, py, pz] = self.grid;
        let l = self.global.lengths();
        let idx = |k: usize, p: usize| -> usize {
            let t = ((x[k] - self.global.lo[k]) / l[k] * p as f64) as isize;
            t.clamp(0, p as isize - 1) as usize
        };
        (idx(0, px) * py + idx(1, py)) * pz + idx(2, pz)
    }
}

/// Final per-atom state keyed by global tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomState {
    pub tag: i64,
    pub x: [f64; 3],
    pub v: [f64; 3],
}

/// Run an NVE Lennard-Jones simulation decomposed over `nranks`
/// simulated MPI ranks (see [`run_decomposed`]).
#[deprecated(
    since = "0.1.0",
    note = "use `comm::brick::run_rank_parallel`, which drives the full \
            Simulation stack (any pair style, any fix) on N ranks"
)]
pub fn run_lj_decomposed(
    positions: &[[f64; 3]],
    velocities: &[[f64; 3]],
    global: Domain,
    lj: LjCut,
    nranks: usize,
    nsteps: usize,
    dt: f64,
) -> (Vec<AtomState>, Vec<f64>) {
    #[allow(deprecated)]
    run_decomposed(positions, velocities, global, lj, nranks, nsteps, dt)
}

/// Run an NVE simulation of any [`TwoBody`] potential decomposed over
/// `nranks` simulated MPI ranks, and return the final atom states
/// (sorted by tag) plus the per-step total potential energy.
///
/// Deprecated shim over [`run_rank_parallel`]: each rank now runs the
/// real [`Simulation`] driver (velocity-Verlet via `fix nve`, binned
/// neighbor lists, skin-deferred rebuilds) instead of the original
/// brute-force kick-drift loop, so trajectories match single-rank
/// `Simulation` runs exactly — which is the equivalence the rank tests
/// assert.
#[deprecated(
    since = "0.1.0",
    note = "use `comm::brick::run_rank_parallel`, which drives the full \
            Simulation stack (any pair style, any fix) on N ranks"
)]
pub fn run_decomposed<P: TwoBody + Clone + 'static>(
    positions: &[[f64; 3]],
    velocities: &[[f64; 3]],
    global: Domain,
    pot: P,
    nranks: usize,
    nsteps: usize,
    dt: f64,
) -> (Vec<AtomState>, Vec<f64>) {
    let mut atoms = crate::atom::AtomData::from_positions(positions);
    {
        let vh = atoms.v.h_view_mut();
        for (i, v) in velocities.iter().enumerate() {
            for (k, &vk) in v.iter().enumerate() {
                vh.set([i, k], vk);
            }
        }
    }
    let spec = RankParallelSpec::new(&atoms, global, nsteps as u64);
    let run = run_rank_parallel(&spec, nranks, |_, system| {
        // Half list + newton on on every rank: the cross-rank pair
        // convention the brick comm layer is built for.
        let pair = PairKokkos::with_options(
            pot.clone(),
            &Space::Serial,
            PairKokkosOptions {
                force_half: Some(true),
                ..Default::default()
            },
        );
        let mut sim = Simulation::new(system, Box::new(pair));
        sim.dt = dt;
        sim.thermo_every = 1;
        sim
    });
    let states = run
        .states
        .iter()
        .map(|s| AtomState {
            tag: s.tag,
            x: s.x,
            v: s.v,
        })
        .collect();
    // Per-step global potential energy: thermo rows are per-rank local
    // sums, so summing rows with the same step reduces them.
    let mut energies = vec![0.0f64; nsteps];
    for rows in &run.thermo {
        for row in rows {
            let k = row.step as usize;
            if k < nsteps {
                energies[k] += row.e_pair;
            }
        }
    }
    (states, energies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{Lattice, LatticeKind};

    #[test]
    fn grid_factorization_is_exact_and_near_cubic() {
        let d = Domain::cubic(10.0);
        for n in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            let b = BrickDecomp::new(d, n);
            assert_eq!(b.nranks(), n);
        }
        let b8 = BrickDecomp::new(d, 8);
        assert_eq!(b8.grid, [2, 2, 2]);
    }

    #[test]
    fn subdomains_tile_the_box() {
        let d = Domain::new([0.0; 3], [4.0, 6.0, 8.0]);
        let b = BrickDecomp::new(d, 6);
        let vol_total: f64 = (0..6).map(|r| b.subdomain(r).volume()).sum();
        assert!((vol_total - d.volume()).abs() < 1e-9);
        // Every point maps to the brick that contains it.
        for r in 0..6 {
            let s = b.subdomain(r);
            let mid = [
                0.5 * (s.lo[0] + s.hi[0]),
                0.5 * (s.lo[1] + s.hi[1]),
                0.5 * (s.lo[2] + s.hi[2]),
            ];
            assert_eq!(b.rank_of(&mid), r);
        }
    }

    fn perturbed_fcc(n: usize) -> (Vec<[f64; 3]>, Domain) {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let positions: Vec<[f64; 3]> = lat
            .positions(n, n, n)
            .iter()
            .enumerate()
            .map(|(i, p)| {
                [
                    p[0] + 0.05 * ((i * 7 % 13) as f64 / 13.0 - 0.5),
                    p[1] + 0.05 * ((i * 11 % 17) as f64 / 17.0 - 0.5),
                    p[2] + 0.05 * ((i * 5 % 19) as f64 / 19.0 - 0.5),
                ]
            })
            .collect();
        (positions, lat.domain(n, n, n))
    }

    #[test]
    #[allow(deprecated)]
    fn decomposed_matches_single_rank_across_rank_counts() {
        let (positions, global) = perturbed_fcc(4);
        let velocities = vec![[0.0; 3]; positions.len()];
        let lj = LjCut::single_type(1.0, 1.0, 2.5);
        let (ref_states, ref_e) =
            run_lj_decomposed(&positions, &velocities, global, lj.clone(), 1, 10, 0.002);
        for nranks in [2usize, 4, 8] {
            let (states, e) = run_lj_decomposed(
                &positions,
                &velocities,
                global,
                lj.clone(),
                nranks,
                10,
                0.002,
            );
            assert_eq!(states.len(), ref_states.len(), "lost atoms at P={nranks}");
            for (a, b) in states.iter().zip(&ref_states) {
                assert_eq!(a.tag, b.tag);
                for k in 0..3 {
                    assert!(
                        (a.x[k] - b.x[k]).abs() < 1e-12,
                        "P={nranks} tag={} x[{k}]: {} vs {}",
                        a.tag,
                        a.x[k],
                        b.x[k]
                    );
                }
            }
            for (ea, eb) in e.iter().zip(&ref_e) {
                assert!((ea - eb).abs() < 1e-12 * eb.abs().max(1.0), "P={nranks}");
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn generic_driver_works_with_morse() {
        use crate::pair::morse::Morse;
        let (positions, global) = perturbed_fcc(4);
        let velocities = vec![[0.0; 3]; positions.len()];
        let pot = Morse::new(1.0, 2.0, 1.2, 2.5);
        let (s1, e1) = run_decomposed(&positions, &velocities, global, pot, 1, 4, 0.001);
        let (s4, e4) = run_decomposed(&positions, &velocities, global, pot, 4, 4, 0.001);
        for (a, b) in s1.iter().zip(&s4) {
            for k in 0..3 {
                assert!((a.x[k] - b.x[k]).abs() < 1e-12);
            }
        }
        for (a, b) in e1.iter().zip(&e4) {
            assert!((a - b).abs() < 1e-12 * a.abs().max(1.0));
        }
    }
}
