//! Brick domain decomposition for the simulated-MPI rank layer.
//!
//! LAMMPS' scalability rests on a spatial decomposition: each MPI rank
//! owns a brick of the box, migrates atoms that cross brick boundaries,
//! and exchanges halo (ghost) copies with neighbors every step. Real
//! MPI at 8192 nodes is a hardware gate in this environment, so the
//! repo provides the *functional* substitute (DESIGN.md §2): ranks run
//! as OS threads and exchange typed messages over channels.
//!
//! This module holds the geometry side — [`BrickDecomp`] factors a rank
//! count into a near-cubic grid and maps positions to owning ranks. The
//! communication layer built on it ([`crate::comm::brick::BrickComm`])
//! and the unified driver ([`crate::comm::brick::RunSpec`]) live in
//! `comm::brick`. (The free-function LJ drivers that used to live here
//! were deprecated in the Comm-API redesign and are gone; all callers
//! go through `RunSpec::run` with a [`crate::comm::CommSpec`] now.)

use crate::domain::Domain;

/// A 3-D brick decomposition of a periodic box.
///
/// By default the grid is uniform: rank `ix` along a dimension owns the
/// fractional slab `[ix/p, (ix+1)/p)`. The load balancer
/// ([`crate::comm::balance`]) can install non-uniform cut fractions via
/// [`BrickDecomp::set_cuts`]; `cuts == None` keeps the original uniform
/// arithmetic bit-for-bit (committed baselines depend on it).
#[derive(Debug, Clone)]
pub struct BrickDecomp {
    pub grid: [usize; 3],
    pub global: Domain,
    /// Non-uniform cut fractions per dimension. `cuts[k]` holds the
    /// `grid[k] - 1` *interior* cut planes as fractions in `(0, 1)`,
    /// strictly increasing. `None` = uniform grid (fast path).
    cuts: Option<[Vec<f64>; 3]>,
}

impl BrickDecomp {
    /// Factor `nranks` into a near-cubic grid (largest factors last, as
    /// LAMMPS' `procs_grid` does for a cubic box).
    pub fn new(global: Domain, nranks: usize) -> Self {
        assert!(nranks > 0);
        let mut best = [1, 1, nranks];
        let mut best_score = f64::INFINITY;
        let mut best_sumsq = usize::MAX;
        for px in 1..=nranks {
            if !nranks.is_multiple_of(px) {
                continue;
            }
            let rem = nranks / px;
            for py in 1..=rem {
                if !rem.is_multiple_of(py) {
                    continue;
                }
                let pz = rem / py;
                let l = global.lengths();
                let dims = [l[0] / px as f64, l[1] / py as f64, l[2] / pz as f64];
                // Score: surface-to-volume of a sub-brick (lower = better).
                let s = 2.0 * (dims[0] * dims[1] + dims[1] * dims[2] + dims[0] * dims[2])
                    / (dims[0] * dims[1] * dims[2]);
                // Equal-surface factorizations exist whenever the box
                // aspect matches a permutation of the grid (e.g. a
                // 4x6x8 box at P=8 scores [1,2,4] and [2,2,2] the
                // same); break ties toward the most balanced grid —
                // more split dimensions give the load balancer more
                // cut planes to move.
                let sumsq = px * px + py * py + pz * pz;
                if s < best_score || (s == best_score && sumsq < best_sumsq) {
                    best_score = s;
                    best_sumsq = sumsq;
                    best = [px, py, pz];
                }
            }
        }
        BrickDecomp {
            grid: best,
            global,
            cuts: None,
        }
    }

    pub fn nranks(&self) -> usize {
        self.grid.iter().product()
    }

    /// Install non-uniform interior cut fractions (`cuts[k].len() ==
    /// grid[k] - 1`, each in `(0, 1)`, strictly increasing). Pass
    /// `None` to restore the uniform grid.
    pub fn set_cuts(&mut self, cuts: Option<[Vec<f64>; 3]>) {
        if let Some(c) = &cuts {
            for (k, ck) in c.iter().enumerate() {
                assert_eq!(
                    ck.len(),
                    self.grid[k] - 1,
                    "dimension {k}: expected {} interior cuts",
                    self.grid[k] - 1
                );
                let mut prev = 0.0;
                for &f in ck {
                    assert!(f > prev && f < 1.0, "cut fractions must increase in (0,1)");
                    prev = f;
                }
            }
        }
        self.cuts = cuts;
    }

    /// The interior cut fractions currently installed, if any.
    pub fn cuts(&self) -> Option<&[Vec<f64>; 3]> {
        self.cuts.as_ref()
    }

    /// Lower/upper cut fraction of slab `i` along dimension `k`.
    #[inline]
    fn frac(&self, k: usize, i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        if i == self.grid[k] {
            return 1.0;
        }
        match &self.cuts {
            Some(c) => c[k][i - 1],
            None => i as f64 / self.grid[k] as f64,
        }
    }

    /// The brick owned by `rank` (x-major ordering).
    pub fn subdomain(&self, rank: usize) -> Domain {
        let [px, py, pz] = self.grid;
        let ix = rank / (py * pz);
        let iy = (rank / pz) % py;
        let iz = rank % pz;
        let l = self.global.lengths();
        if self.cuts.is_none() {
            // Uniform fast path: the exact arithmetic the pre-balancer
            // code used (sub-boundary bits feed committed baselines).
            let lo = [
                self.global.lo[0] + l[0] * ix as f64 / px as f64,
                self.global.lo[1] + l[1] * iy as f64 / py as f64,
                self.global.lo[2] + l[2] * iz as f64 / pz as f64,
            ];
            let hi = [
                self.global.lo[0] + l[0] * (ix + 1) as f64 / px as f64,
                self.global.lo[1] + l[1] * (iy + 1) as f64 / py as f64,
                self.global.lo[2] + l[2] * (iz + 1) as f64 / pz as f64,
            ];
            return Domain::new(lo, hi);
        }
        let c = [ix, iy, iz];
        let mut lo = [0.0; 3];
        let mut hi = [0.0; 3];
        for k in 0..3 {
            lo[k] = self.global.lo[k] + l[k] * self.frac(k, c[k]);
            hi[k] = self.global.lo[k] + l[k] * self.frac(k, c[k] + 1);
        }
        Domain::new(lo, hi)
    }

    /// Which rank owns a (wrapped) position.
    pub fn rank_of(&self, x: &[f64; 3]) -> usize {
        let [px, py, pz] = self.grid;
        let l = self.global.lengths();
        if let Some(cuts) = &self.cuts {
            let idx = |k: usize, p: usize| -> usize {
                // Slab i owns [boundary(i), boundary(i+1)); comparing
                // against the same boundary *bits* as `subdomain` keeps
                // ownership and geometry consistent.
                let i = cuts[k].partition_point(|&f| self.global.lo[k] + l[k] * f <= x[k]);
                i.min(p - 1)
            };
            return (idx(0, px) * py + idx(1, py)) * pz + idx(2, pz);
        }
        let idx = |k: usize, p: usize| -> usize {
            let t = ((x[k] - self.global.lo[k]) / l[k] * p as f64) as isize;
            t.clamp(0, p as isize - 1) as usize
        };
        (idx(0, px) * py + idx(1, py)) * pz + idx(2, pz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{Lattice, LatticeKind};

    #[test]
    fn grid_factorization_is_exact_and_near_cubic() {
        let d = Domain::cubic(10.0);
        for n in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            let b = BrickDecomp::new(d, n);
            assert_eq!(b.nranks(), n);
        }
        let b8 = BrickDecomp::new(d, 8);
        assert_eq!(b8.grid, [2, 2, 2]);
    }

    #[test]
    fn subdomains_tile_the_box() {
        let d = Domain::new([0.0; 3], [4.0, 6.0, 8.0]);
        let b = BrickDecomp::new(d, 6);
        let vol_total: f64 = (0..6).map(|r| b.subdomain(r).volume()).sum();
        assert!((vol_total - d.volume()).abs() < 1e-9);
        // Every point maps to the brick that contains it.
        for r in 0..6 {
            let s = b.subdomain(r);
            let mid = [
                0.5 * (s.lo[0] + s.hi[0]),
                0.5 * (s.lo[1] + s.hi[1]),
                0.5 * (s.lo[2] + s.hi[2]),
            ];
            assert_eq!(b.rank_of(&mid), r);
        }
    }

    #[test]
    fn non_uniform_cuts_tile_and_agree_with_rank_of() {
        let d = Domain::new([-1.0; 3], [3.0, 5.0, 7.0]);
        let mut b = BrickDecomp::new(d, 8);
        assert_eq!(b.grid, [2, 2, 2]);
        b.set_cuts(Some([vec![0.3], vec![0.7], vec![0.5]]));
        // Sub-domains still tile the box exactly.
        let vol_total: f64 = (0..8).map(|r| b.subdomain(r).volume()).sum();
        assert!((vol_total - d.volume()).abs() < 1e-9);
        // Interior faces of adjacent bricks share identical bits.
        let s0 = b.subdomain(b.rank_of(&[-0.5, 0.0, 0.0]));
        let s1 = b.subdomain(b.rank_of(&[2.5, 0.0, 0.0]));
        assert_eq!(s0.hi[0].to_bits(), s1.lo[0].to_bits());
        // Every sub-domain midpoint maps back to its rank, and points on
        // a cut plane belong to the upper slab.
        for r in 0..8 {
            let s = b.subdomain(r);
            let mid = [
                0.5 * (s.lo[0] + s.hi[0]),
                0.5 * (s.lo[1] + s.hi[1]),
                0.5 * (s.lo[2] + s.hi[2]),
            ];
            assert_eq!(b.rank_of(&mid), r);
            assert_eq!(b.rank_of(&[s.lo[0], mid[1], mid[2]]), r);
        }
        // Clearing the cuts restores the uniform geometry bit-for-bit.
        let uniform = BrickDecomp::new(d, 8);
        b.set_cuts(None);
        for r in 0..8 {
            let (a, u) = (b.subdomain(r), uniform.subdomain(r));
            assert_eq!(a.lo, u.lo);
            assert_eq!(a.hi, u.hi);
        }
    }

    fn perturbed_fcc(n: usize) -> (Vec<[f64; 3]>, Domain) {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let positions: Vec<[f64; 3]> = lat
            .positions(n, n, n)
            .iter()
            .enumerate()
            .map(|(i, p)| {
                [
                    p[0] + 0.05 * ((i * 7 % 13) as f64 / 13.0 - 0.5),
                    p[1] + 0.05 * ((i * 11 % 17) as f64 / 17.0 - 0.5),
                    p[2] + 0.05 * ((i * 5 % 19) as f64 / 19.0 - 0.5),
                ]
            })
            .collect();
        (positions, lat.domain(n, n, n))
    }

    /// Drive the unified `RunSpec` driver for a [`TwoBody`] potential
    /// on the perturbed lattice (the workload the old deprecated
    /// free-function drivers covered before they were removed).
    fn run_two_body<P>(
        positions: &[[f64; 3]],
        global: Domain,
        pot: P,
        nranks: usize,
        nsteps: u64,
        dt: f64,
    ) -> crate::comm::brick::MultiRankRun
    where
        P: crate::pair::TwoBody + Clone + 'static,
    {
        use crate::comm::brick::RunSpec;
        use crate::comm::CommSpec;
        use crate::pair::{PairKokkos, PairKokkosOptions};
        use crate::sim::Simulation;
        use lkk_kokkos::Space;
        let atoms = crate::atom::AtomData::from_positions(positions);
        let spec = RunSpec::new(&atoms, global, nsteps).comm(CommSpec::Brick {
            ranks: nranks,
            balance: None,
        });
        let run = spec.run(move |_, system| {
            // Half list + newton on on every rank: the cross-rank pair
            // convention the brick comm layer is built for.
            let pair = PairKokkos::with_options(
                pot.clone(),
                &Space::Serial,
                PairKokkosOptions {
                    force_half: Some(true),
                    ..Default::default()
                },
            );
            let mut sim = Simulation::new(system, Box::new(pair));
            sim.dt = dt;
            sim
        });
        run.expect("fault-free rank-parallel run failed")
    }

    #[test]
    fn decomposed_matches_single_rank_across_rank_counts() {
        use crate::pair::lj::LjCut;
        let (positions, global) = perturbed_fcc(4);
        let lj = LjCut::single_type(1.0, 1.0, 2.5);
        let reference = run_two_body(&positions, global, lj.clone(), 1, 10, 0.002);
        for nranks in [2usize, 4, 8] {
            let run = run_two_body(&positions, global, lj.clone(), nranks, 10, 0.002);
            assert_eq!(
                run.states.len(),
                reference.states.len(),
                "lost atoms at P={nranks}"
            );
            assert_eq!(run.owned_atoms.len(), nranks);
            assert_eq!(run.owned_atoms.iter().sum::<usize>(), positions.len());
            assert!(run.atom_imbalance() >= 1.0);
            for (a, b) in run.states.iter().zip(&reference.states) {
                assert_eq!(a.tag, b.tag);
                for k in 0..3 {
                    assert!(
                        (a.x[k] - b.x[k]).abs() < 1e-12,
                        "P={nranks} tag={} x[{k}]: {} vs {}",
                        a.tag,
                        a.x[k],
                        b.x[k]
                    );
                }
            }
            assert!(
                (run.e_pair - reference.e_pair).abs() < 1e-12 * reference.e_pair.abs().max(1.0),
                "P={nranks} e_pair {} vs {}",
                run.e_pair,
                reference.e_pair
            );
        }
    }

    #[test]
    fn generic_driver_works_with_morse() {
        use crate::pair::morse::Morse;
        let (positions, global) = perturbed_fcc(4);
        let pot = Morse::new(1.0, 2.0, 1.2, 2.5);
        let r1 = run_two_body(&positions, global, pot, 1, 4, 0.001);
        let r4 = run_two_body(&positions, global, pot, 4, 4, 0.001);
        for (a, b) in r1.states.iter().zip(&r4.states) {
            for k in 0..3 {
                assert!((a.x[k] - b.x[k]).abs() < 1e-12);
            }
        }
        assert!((r1.e_pair - r4.e_pair).abs() < 1e-12 * r1.e_pair.abs().max(1.0));
    }
}
