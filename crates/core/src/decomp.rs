//! Brick domain decomposition for the simulated-MPI rank layer.
//!
//! LAMMPS' scalability rests on a spatial decomposition: each MPI rank
//! owns a brick of the box, migrates atoms that cross brick boundaries,
//! and exchanges halo (ghost) copies with neighbors every step. Real
//! MPI at 8192 nodes is a hardware gate in this environment, so the
//! repo provides the *functional* substitute (DESIGN.md §2): ranks run
//! as OS threads and exchange typed messages over channels.
//!
//! This module holds the geometry side — [`BrickDecomp`] factors a rank
//! count into a near-cubic grid and maps positions to owning ranks. The
//! communication layer built on it ([`crate::comm::brick::BrickComm`])
//! and the rank-parallel driver ([`crate::comm::brick::run_rank_parallel`])
//! live in `comm::brick`. (The free-function LJ drivers that used to
//! live here were deprecated in the Comm-API redesign and are gone; all
//! callers go through `run_rank_parallel` now.)

use crate::domain::Domain;

/// A 3-D brick decomposition of a periodic box.
#[derive(Debug, Clone)]
pub struct BrickDecomp {
    pub grid: [usize; 3],
    pub global: Domain,
}

impl BrickDecomp {
    /// Factor `nranks` into a near-cubic grid (largest factors last, as
    /// LAMMPS' `procs_grid` does for a cubic box).
    pub fn new(global: Domain, nranks: usize) -> Self {
        assert!(nranks > 0);
        let mut best = [1, 1, nranks];
        let mut best_score = f64::INFINITY;
        for px in 1..=nranks {
            if !nranks.is_multiple_of(px) {
                continue;
            }
            let rem = nranks / px;
            for py in 1..=rem {
                if !rem.is_multiple_of(py) {
                    continue;
                }
                let pz = rem / py;
                let l = global.lengths();
                let dims = [l[0] / px as f64, l[1] / py as f64, l[2] / pz as f64];
                // Score: surface-to-volume of a sub-brick (lower = better).
                let s = 2.0 * (dims[0] * dims[1] + dims[1] * dims[2] + dims[0] * dims[2])
                    / (dims[0] * dims[1] * dims[2]);
                if s < best_score {
                    best_score = s;
                    best = [px, py, pz];
                }
            }
        }
        BrickDecomp { grid: best, global }
    }

    pub fn nranks(&self) -> usize {
        self.grid.iter().product()
    }

    /// The brick owned by `rank` (x-major ordering).
    pub fn subdomain(&self, rank: usize) -> Domain {
        let [px, py, pz] = self.grid;
        let ix = rank / (py * pz);
        let iy = (rank / pz) % py;
        let iz = rank % pz;
        let l = self.global.lengths();
        let lo = [
            self.global.lo[0] + l[0] * ix as f64 / px as f64,
            self.global.lo[1] + l[1] * iy as f64 / py as f64,
            self.global.lo[2] + l[2] * iz as f64 / pz as f64,
        ];
        let hi = [
            self.global.lo[0] + l[0] * (ix + 1) as f64 / px as f64,
            self.global.lo[1] + l[1] * (iy + 1) as f64 / py as f64,
            self.global.lo[2] + l[2] * (iz + 1) as f64 / pz as f64,
        ];
        Domain::new(lo, hi)
    }

    /// Which rank owns a (wrapped) position.
    pub fn rank_of(&self, x: &[f64; 3]) -> usize {
        let [px, py, pz] = self.grid;
        let l = self.global.lengths();
        let idx = |k: usize, p: usize| -> usize {
            let t = ((x[k] - self.global.lo[k]) / l[k] * p as f64) as isize;
            t.clamp(0, p as isize - 1) as usize
        };
        (idx(0, px) * py + idx(1, py)) * pz + idx(2, pz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{Lattice, LatticeKind};

    #[test]
    fn grid_factorization_is_exact_and_near_cubic() {
        let d = Domain::cubic(10.0);
        for n in [1usize, 2, 3, 4, 6, 8, 12, 16] {
            let b = BrickDecomp::new(d, n);
            assert_eq!(b.nranks(), n);
        }
        let b8 = BrickDecomp::new(d, 8);
        assert_eq!(b8.grid, [2, 2, 2]);
    }

    #[test]
    fn subdomains_tile_the_box() {
        let d = Domain::new([0.0; 3], [4.0, 6.0, 8.0]);
        let b = BrickDecomp::new(d, 6);
        let vol_total: f64 = (0..6).map(|r| b.subdomain(r).volume()).sum();
        assert!((vol_total - d.volume()).abs() < 1e-9);
        // Every point maps to the brick that contains it.
        for r in 0..6 {
            let s = b.subdomain(r);
            let mid = [
                0.5 * (s.lo[0] + s.hi[0]),
                0.5 * (s.lo[1] + s.hi[1]),
                0.5 * (s.lo[2] + s.hi[2]),
            ];
            assert_eq!(b.rank_of(&mid), r);
        }
    }

    fn perturbed_fcc(n: usize) -> (Vec<[f64; 3]>, Domain) {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let positions: Vec<[f64; 3]> = lat
            .positions(n, n, n)
            .iter()
            .enumerate()
            .map(|(i, p)| {
                [
                    p[0] + 0.05 * ((i * 7 % 13) as f64 / 13.0 - 0.5),
                    p[1] + 0.05 * ((i * 11 % 17) as f64 / 17.0 - 0.5),
                    p[2] + 0.05 * ((i * 5 % 19) as f64 / 19.0 - 0.5),
                ]
            })
            .collect();
        (positions, lat.domain(n, n, n))
    }

    /// Drive `run_rank_parallel` for a [`TwoBody`] potential on the
    /// perturbed lattice (the workload the old deprecated free-function
    /// drivers covered before they were removed).
    fn run_two_body<P>(
        positions: &[[f64; 3]],
        global: Domain,
        pot: P,
        nranks: usize,
        nsteps: u64,
        dt: f64,
    ) -> crate::comm::brick::MultiRankRun
    where
        P: crate::pair::TwoBody + Clone + 'static,
    {
        use crate::comm::brick::{run_rank_parallel, RankParallelSpec};
        use crate::pair::{PairKokkos, PairKokkosOptions};
        use crate::sim::Simulation;
        use lkk_kokkos::Space;
        let atoms = crate::atom::AtomData::from_positions(positions);
        let spec = RankParallelSpec::new(&atoms, global, nsteps);
        let run = run_rank_parallel(&spec, nranks, move |_, system| {
            // Half list + newton on on every rank: the cross-rank pair
            // convention the brick comm layer is built for.
            let pair = PairKokkos::with_options(
                pot.clone(),
                &Space::Serial,
                PairKokkosOptions {
                    force_half: Some(true),
                    ..Default::default()
                },
            );
            let mut sim = Simulation::new(system, Box::new(pair));
            sim.dt = dt;
            sim
        });
        run.expect("fault-free rank-parallel run failed")
    }

    #[test]
    fn decomposed_matches_single_rank_across_rank_counts() {
        use crate::pair::lj::LjCut;
        let (positions, global) = perturbed_fcc(4);
        let lj = LjCut::single_type(1.0, 1.0, 2.5);
        let reference = run_two_body(&positions, global, lj.clone(), 1, 10, 0.002);
        for nranks in [2usize, 4, 8] {
            let run = run_two_body(&positions, global, lj.clone(), nranks, 10, 0.002);
            assert_eq!(
                run.states.len(),
                reference.states.len(),
                "lost atoms at P={nranks}"
            );
            assert_eq!(run.owned_atoms.len(), nranks);
            assert_eq!(run.owned_atoms.iter().sum::<usize>(), positions.len());
            assert!(run.atom_imbalance() >= 1.0);
            for (a, b) in run.states.iter().zip(&reference.states) {
                assert_eq!(a.tag, b.tag);
                for k in 0..3 {
                    assert!(
                        (a.x[k] - b.x[k]).abs() < 1e-12,
                        "P={nranks} tag={} x[{k}]: {} vs {}",
                        a.tag,
                        a.x[k],
                        b.x[k]
                    );
                }
            }
            assert!(
                (run.e_pair - reference.e_pair).abs() < 1e-12 * reference.e_pair.abs().max(1.0),
                "P={nranks} e_pair {} vs {}",
                run.e_pair,
                reference.e_pair
            );
        }
    }

    #[test]
    fn generic_driver_works_with_morse() {
        use crate::pair::morse::Morse;
        let (positions, global) = perturbed_fcc(4);
        let pot = Morse::new(1.0, 2.0, 1.2, 2.5);
        let r1 = run_two_body(&positions, global, pot, 1, 4, 0.001);
        let r4 = run_two_body(&positions, global, pot, 4, 4, 0.001);
        for (a, b) in r1.states.iter().zip(&r4.states) {
            for k in 0..3 {
                assert!((a.x[k] - b.x[k]).abs() < 1e-12);
            }
        }
        assert!((r1.e_pair - r4.e_pair).abs() < 1e-12 * r1.e_pair.abs().max(1.0));
    }
}
