//! Fixed-topology bonded interactions — the MOLECULE package of §3.1
//! ("for bonded interactions").
//!
//! Harmonic bond and angle styles over an explicit [`Topology`]
//! (contrast with ReaxFF, where bonds are *recomputed* every step):
//!
//! ```text
//! E_bond  = Σ k_b (r − r₀)²
//! E_angle = Σ k_θ (θ − θ₀)²
//! ```
//!
//! [`PairMolecular`] composes a non-bonded pair style with the bonded
//! terms, the way a LAMMPS input combines `pair_style` + `bond_style` +
//! `angle_style`.

use crate::atom::Mask;
use crate::neighbor::NeighborList;
use crate::pair::{PairResults, PairStyle};
use crate::sim::System;
use lkk_kokkos::Space;

/// A harmonic bond: atoms by index, stiffness `k`, rest length `r0`.
#[derive(Debug, Clone, Copy)]
pub struct Bond {
    pub i: u32,
    pub j: u32,
    pub k: f64,
    pub r0: f64,
}

/// A harmonic angle j–i–k (center first), stiffness `k`, rest angle
/// `theta0` in radians.
#[derive(Debug, Clone, Copy)]
pub struct Angle {
    pub center: u32,
    pub j: u32,
    pub k_atom: u32,
    pub k: f64,
    pub theta0: f64,
}

/// Explicit molecular topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    pub bonds: Vec<Bond>,
    pub angles: Vec<Angle>,
}

impl Topology {
    /// Compute bonded energy and accumulate forces (minimum-image
    /// displacements; owned atoms only). Returns `(energy, virial)`.
    pub fn compute(&self, system: &mut System) -> (f64, f64) {
        system.atoms.sync(&Space::Serial, Mask::X);
        let domain = system.domain;
        let mut energy = 0.0;
        let mut virial = 0.0;
        let n = system.atoms.nlocal;
        let mut forces = vec![[0.0f64; 3]; n];
        {
            let xh = system.atoms.x.h_view();
            let pos = |i: u32| -> [f64; 3] {
                let i = i as usize;
                [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])]
            };
            for b in &self.bonds {
                let d = domain.min_image(&pos(b.i), &pos(b.j));
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                let dr = r - b.r0;
                energy += b.k * dr * dr;
                let dedr = 2.0 * b.k * dr;
                for k in 0..3 {
                    let f = -dedr * d[k] / r; // force on i (d = x_i − x_j)
                    forces[b.i as usize][k] += f;
                    forces[b.j as usize][k] -= f;
                    virial += d[k] * f;
                }
            }
            for a in &self.angles {
                let d1 = domain.min_image(&pos(a.j), &pos(a.center));
                let d2 = domain.min_image(&pos(a.k_atom), &pos(a.center));
                let r1 = (d1[0] * d1[0] + d1[1] * d1[1] + d1[2] * d1[2]).sqrt();
                let r2 = (d2[0] * d2[0] + d2[1] * d2[1] + d2[2] * d2[2]).sqrt();
                let c =
                    ((d1[0] * d2[0] + d1[1] * d2[1] + d1[2] * d2[2]) / (r1 * r2)).clamp(-1.0, 1.0);
                let theta = c.acos();
                let dth = theta - a.theta0;
                energy += a.k * dth * dth;
                // dE/dcosθ = dE/dθ · dθ/dcosθ = 2kΔθ · (−1/sinθ).
                let s = (1.0 - c * c).sqrt().max(1e-9);
                let dedc = -2.0 * a.k * dth / s;
                for k in 0..3 {
                    let g1 = dedc * (d2[k] / (r1 * r2) - c * d1[k] / (r1 * r1));
                    let g2 = dedc * (d1[k] / (r1 * r2) - c * d2[k] / (r2 * r2));
                    forces[a.j as usize][k] -= g1;
                    forces[a.k_atom as usize][k] -= g2;
                    forces[a.center as usize][k] += g1 + g2;
                    virial -= d1[k] * g1 + d2[k] * g2;
                }
            }
        }
        let fh = system.atoms.f.h_view_mut();
        for (i, f) in forces.iter().enumerate() {
            for (k, &fk) in f.iter().enumerate() {
                let v = fh.at([i, k]) + fk;
                fh.set([i, k], v);
            }
        }
        system.atoms.modified(&Space::Serial, Mask::F);
        (energy, virial)
    }
}

/// A pair style plus a molecular topology (`pair_style` + `bond_style`
/// + `angle_style` in one).
pub struct PairMolecular<P: PairStyle> {
    pub pair: P,
    pub topology: Topology,
    name: String,
}

impl<P: PairStyle> PairMolecular<P> {
    pub fn new(pair: P, topology: Topology) -> Self {
        PairMolecular {
            name: format!("{}+molecular", pair.name()),
            pair,
            topology,
        }
    }
}

impl<P: PairStyle + 'static> PairStyle for PairMolecular<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn cutoff(&self) -> f64 {
        self.pair.cutoff()
    }

    fn wants_half_list(&self) -> bool {
        self.pair.wants_half_list()
    }

    fn needs_reverse_comm(&self) -> bool {
        self.pair.needs_reverse_comm()
    }

    fn compute(&mut self, system: &mut System, list: &NeighborList, eflag: bool) -> PairResults {
        let mut res = self.pair.compute(system, list, eflag);
        // Bonded terms add on the host mirror after the pair kernel
        // (forces must be synced home first if the pair ran on device).
        system.atoms.sync(&Space::Serial, Mask::F);
        let (e_mol, w_mol) = self.topology.compute(system);
        res.energy += e_mol;
        res.virial += w_mol;
        for k in 0..3 {
            res.virial_tensor[k] += w_mol / 3.0;
        }
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomData;
    use crate::domain::Domain;
    use crate::pair::yukawa::Yukawa;
    use crate::pair::PairKokkos;
    use crate::sim::Simulation;

    fn water_like() -> (Vec<[f64; 3]>, Topology) {
        // O at center, two H at ~0.96 with a ~104.5° angle.
        let positions = vec![[5.0, 5.0, 5.0], [5.96, 5.05, 5.0], [4.78, 5.92, 5.0]];
        let topology = Topology {
            bonds: vec![
                Bond {
                    i: 0,
                    j: 1,
                    k: 22.0,
                    r0: 0.9572,
                },
                Bond {
                    i: 0,
                    j: 2,
                    k: 22.0,
                    r0: 0.9572,
                },
            ],
            angles: vec![Angle {
                center: 0,
                j: 1,
                k_atom: 2,
                k: 1.7,
                theta0: 104.52f64.to_radians(),
            }],
        };
        (positions, topology)
    }

    #[test]
    fn bonded_forces_match_finite_difference() {
        let (positions, topology) = water_like();
        let energy_of = |pos: &[[f64; 3]]| -> f64 {
            let atoms = AtomData::from_positions(pos);
            let mut system = System::new(atoms, Domain::cubic(10.0), Space::Serial);
            topology.compute(&mut system).0
        };
        let atoms = AtomData::from_positions(&positions);
        let mut system = System::new(atoms, Domain::cubic(10.0), Space::Serial);
        system.atoms.zero_forces();
        topology.compute(&mut system);
        let fh = system.atoms.f.h_view();
        let h = 1e-6;
        for a in 0..3 {
            for k in 0..3 {
                let mut pp = positions.clone();
                let mut pm = positions.clone();
                pp[a][k] += h;
                pm[a][k] -= h;
                let fd = -(energy_of(&pp) - energy_of(&pm)) / (2.0 * h);
                assert!(
                    (fh.at([a, k]) - fd).abs() < 1e-6 * fd.abs().max(1e-3),
                    "atom {a} dir {k}: {} vs {fd}",
                    fh.at([a, k])
                );
            }
        }
    }

    #[test]
    fn molecular_nve_conserves_energy() {
        // A water-like molecule with an inert (weak Yukawa) non-bonded
        // background, integrated microcanonically.
        let (positions, topology) = water_like();
        let mut atoms = AtomData::from_positions(&positions);
        atoms.mass = vec![16.0];
        // Small initial stretch so the molecule vibrates.
        atoms.x.h_view_mut().set([1, 0], 6.05);
        let space = Space::Serial;
        let system = System::new(atoms, Domain::cubic(10.0), space.clone());
        let pair = PairKokkos::new(Yukawa::new(1e-6, 1.0, 2.5), &space);
        let molecular = PairMolecular::new(pair, topology);
        let mut sim = Simulation::new(system, Box::new(molecular));
        sim.dt = 0.002;
        sim.setup();
        let e0 = sim.total_energy();
        sim.run(500);
        let drift = (sim.total_energy() - e0).abs();
        assert!(drift < 1e-4, "drift {drift}");
        // The molecule is still intact: bond length near r0.
        let d = sim
            .system
            .domain
            .min_image(&sim.system.atoms.pos(0), &sim.system.atoms.pos(1));
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        assert!((r - 0.9572).abs() < 0.2, "bond length {r}");
    }

    #[test]
    fn rest_geometry_has_zero_bonded_force() {
        // Place the atoms exactly at the rest bond lengths and angle.
        let theta: f64 = 104.52f64.to_radians();
        let positions = vec![
            [5.0, 5.0, 5.0],
            [5.0 + 0.9572, 5.0, 5.0],
            [5.0 + 0.9572 * theta.cos(), 5.0 + 0.9572 * theta.sin(), 5.0],
        ];
        let (_, topology) = water_like();
        let atoms = AtomData::from_positions(&positions);
        let mut system = System::new(atoms, Domain::cubic(10.0), Space::Serial);
        let (e, _) = topology.compute(&mut system);
        assert!(e < 1e-12, "rest energy {e}");
        let fh = system.atoms.f.h_view();
        for a in 0..3 {
            for k in 0..3 {
                assert!(fh.at([a, k]).abs() < 1e-9);
            }
        }
    }
}
