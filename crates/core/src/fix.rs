//! "Fix" styles: operations applied at fixed points of every timestep
//! (§2.2). We implement the two the benchmarks need: `nve` (velocity
//! Verlet time integration) and `langevin` (stochastic thermostat).

use crate::atom::Mask;
use crate::sim::System;

/// A persistent style invoked at set points in the timestep loop.
pub trait Fix: Send {
    fn name(&self) -> &str;
    /// Before force computation: first half-kick and drift.
    fn initial_integrate(&mut self, _system: &mut System, _dt: f64) {}
    /// After force computation, before the final kick.
    fn post_force(&mut self, _system: &mut System, _dt: f64, _step: u64) {}
    /// After force computation: second half-kick.
    fn final_integrate(&mut self, _system: &mut System, _dt: f64) {}
}

/// `fix nve`: microcanonical velocity-Verlet integration.
#[derive(Debug, Default)]
pub struct FixNve;

impl Fix for FixNve {
    fn name(&self) -> &str {
        "nve"
    }

    fn initial_integrate(&mut self, system: &mut System, dt: f64) {
        let space = system.space.clone();
        system
            .atoms
            .sync(&space, Mask::X | Mask::V | Mask::F | Mask::TYPE);
        let nlocal = system.atoms.nlocal;
        let mass = system.atoms.mass.clone();
        let mvv2e = system.units.mvv2e;
        let atoms = &mut system.atoms;
        let typ = atoms.typ.view_for(&space);
        let f = atoms.f.view_for(&space);
        let xw = atoms.x.view_for_mut(&space).par_write();
        // v and x are updated per-atom: rows are disjoint.
        let vw = atoms.v.view_for_mut(&space).par_write();
        space.parallel_for("NVEInitialIntegrate", nlocal, |i| {
            let dtfm = 0.5 * dt / (mass[typ.at([i]) as usize] * mvv2e);
            for k in 0..3 {
                let v = vw.get([i, k]) + dtfm * f.at([i, k]);
                unsafe {
                    vw.write([i, k], v);
                    xw.write([i, k], xw.get([i, k]) + dt * v);
                }
            }
        });
        system.atoms.modified(&space, Mask::X | Mask::V);
    }

    fn final_integrate(&mut self, system: &mut System, dt: f64) {
        let space = system.space.clone();
        system.atoms.sync(&space, Mask::V | Mask::F | Mask::TYPE);
        let nlocal = system.atoms.nlocal;
        let mass = system.atoms.mass.clone();
        let mvv2e = system.units.mvv2e;
        let atoms = &mut system.atoms;
        let typ = atoms.typ.view_for(&space);
        let f = atoms.f.view_for(&space);
        let vw = atoms.v.view_for_mut(&space).par_write();
        space.parallel_for("NVEFinalIntegrate", nlocal, |i| {
            let dtfm = 0.5 * dt / (mass[typ.at([i]) as usize] * mvv2e);
            for k in 0..3 {
                unsafe { vw.write([i, k], vw.get([i, k]) + dtfm * f.at([i, k])) };
            }
        });
        system.atoms.modified(&space, Mask::V);
    }
}

/// Counter-based Gaussian noise: deterministic, order-independent, and
/// safe to evaluate from any thread (splitmix64 + Box-Muller).
#[inline]
fn gaussian_hash(seed: u64, step: u64, atom: u64, lane: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(step.wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(atom.wrapping_mul(0x94d049bb133111eb))
        .wrapping_add(lane.wrapping_mul(0xd6e8feb86659fd93));
    let mut next = || {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    };
    let u1 = (next() >> 11) as f64 / (1u64 << 53) as f64;
    let u2 = (next() >> 11) as f64 / (1u64 << 53) as f64;
    let u1 = u1.max(1e-300);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `fix langevin`: friction + stochastic force thermostat,
/// `F += −(m/damp) v + √(2 m k_B T / (damp·dt)) ξ`.
#[derive(Debug)]
pub struct FixLangevin {
    pub t_target: f64,
    pub damp: f64,
    pub seed: u64,
}

impl FixLangevin {
    pub fn new(t_target: f64, damp: f64, seed: u64) -> Self {
        assert!(damp > 0.0, "langevin damp must be positive");
        FixLangevin {
            t_target,
            damp,
            seed,
        }
    }
}

impl Fix for FixLangevin {
    fn name(&self) -> &str {
        "langevin"
    }

    fn post_force(&mut self, system: &mut System, dt: f64, step: u64) {
        let space = system.space.clone();
        system.atoms.sync(&space, Mask::V | Mask::F | Mask::TYPE);
        let nlocal = system.atoms.nlocal;
        let mass = system.atoms.mass.clone();
        let units = system.units;
        let (t_target, damp, seed) = (self.t_target, self.damp, self.seed);
        let atoms = &mut system.atoms;
        let typ = atoms.typ.view_for(&space);
        let v = atoms.v.view_for(&space);
        let fw = atoms.f.view_for_mut(&space).par_write();
        space.parallel_for("LangevinPostForce", nlocal, |i| {
            let m = mass[typ.at([i]) as usize];
            let gamma1 = -m * units.mvv2e / damp;
            let gamma2 = (2.0 * units.boltz * t_target * m * units.mvv2e / (damp * dt)).sqrt();
            for k in 0..3 {
                let noise = gaussian_hash(seed, step, i as u64, k as u64);
                unsafe {
                    fw.add([i, k], gamma1 * v.at([i, k]) + gamma2 * noise);
                }
            }
        });
        system.atoms.modified(&space, Mask::F);
    }
}

/// `fix nvt`: Nosé-Hoover thermostatted integration (single chain,
/// velocity-Verlet splitting à la Martyna-Tuckerman-Klein). Replaces
/// `fix nve`: it performs the full time integration.
#[derive(Debug)]
pub struct FixNvt {
    pub t_target: f64,
    /// Thermostat damping time (same units as dt; LAMMPS `Tdamp`).
    pub t_damp: f64,
    /// Thermostat velocity (ξ) and its "mass" is derived per step.
    xi: f64,
    nve: FixNve,
}

impl FixNvt {
    pub fn new(t_target: f64, t_damp: f64) -> Self {
        assert!(t_damp > 0.0);
        FixNvt {
            t_target,
            t_damp,
            xi: 0.0,
            nve: FixNve,
        }
    }

    /// Half-step thermostat: update ξ from the temperature error and
    /// rescale velocities.
    fn thermostat_half(&mut self, system: &mut System, dt: f64) {
        system.atoms.sync(&lkk_kokkos::Space::Serial, Mask::V);
        let t_now = crate::compute::temperature(&system.atoms, &system.units);
        if t_now <= 0.0 {
            return;
        }
        let q = self.t_damp * self.t_damp; // thermostat inertia (scaled)
        self.xi += 0.5 * dt * (t_now / self.t_target - 1.0) / q;
        let scale = (-0.5 * dt * self.xi).exp();
        let n = system.atoms.nlocal;
        let vh = system.atoms.v.h_view_mut();
        for i in 0..n {
            for k in 0..3 {
                let v = vh.at([i, k]) * scale;
                vh.set([i, k], v);
            }
        }
    }
}

impl Fix for FixNvt {
    fn name(&self) -> &str {
        "nvt"
    }

    fn initial_integrate(&mut self, system: &mut System, dt: f64) {
        self.thermostat_half(system, dt);
        self.nve.initial_integrate(system, dt);
    }

    fn final_integrate(&mut self, system: &mut System, dt: f64) {
        self.nve.final_integrate(system, dt);
        self.thermostat_half(system, dt);
    }
}

/// `fix momentum`: zero the center-of-mass linear momentum at a fixed
/// interval (prevents the "flying ice cube" under long thermostatted
/// runs).
#[derive(Debug)]
pub struct FixMomentum {
    pub every: u64,
}

impl Fix for FixMomentum {
    fn name(&self) -> &str {
        "momentum"
    }

    fn post_force(&mut self, system: &mut System, _dt: f64, step: u64) {
        if self.every == 0 || !step.is_multiple_of(self.every) {
            return;
        }
        system
            .atoms
            .sync(&lkk_kokkos::Space::Serial, Mask::V | Mask::TYPE);
        let n = system.atoms.nlocal;
        let mass = system.atoms.mass.clone();
        let mut p = [0.0f64; 3];
        let mut mtot = 0.0;
        {
            let vh = system.atoms.v.h_view();
            let typ = system.atoms.typ.h_view();
            for i in 0..n {
                let m = mass[typ.at([i]) as usize];
                mtot += m;
                for (k, pk) in p.iter_mut().enumerate() {
                    *pk += m * vh.at([i, k]);
                }
            }
        }
        let vh = system.atoms.v.h_view_mut();
        for i in 0..n {
            for (k, &pk) in p.iter().enumerate() {
                let v = vh.at([i, k]) - pk / mtot;
                vh.set([i, k], v);
            }
        }
        system.atoms.modified(&lkk_kokkos::Space::Serial, Mask::V);
    }
}

/// `fix setforce`: clamp force components to fixed values (commonly 0
/// to freeze boundary layers). `None` leaves a component untouched.
#[derive(Debug)]
pub struct FixSetForce {
    /// Applies to atoms with index < `first_n` (a simple "group").
    pub first_n: usize,
    pub fx: Option<f64>,
    pub fy: Option<f64>,
    pub fz: Option<f64>,
}

impl Fix for FixSetForce {
    fn name(&self) -> &str {
        "setforce"
    }

    fn post_force(&mut self, system: &mut System, _dt: f64, _step: u64) {
        system.atoms.sync(&lkk_kokkos::Space::Serial, Mask::F);
        let n = self.first_n.min(system.atoms.nlocal);
        let fh = system.atoms.f.h_view_mut();
        for i in 0..n {
            if let Some(v) = self.fx {
                fh.set([i, 0], v);
            }
            if let Some(v) = self.fy {
                fh.set([i, 1], v);
            }
            if let Some(v) = self.fz {
                fh.set([i, 2], v);
            }
        }
        system.atoms.modified(&lkk_kokkos::Space::Serial, Mask::F);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomData;
    use crate::domain::Domain;
    use lkk_kokkos::Space;

    fn free_particle_system() -> System {
        let mut atoms = AtomData::from_positions(&[[5.0, 5.0, 5.0]]);
        atoms.v.h_view_mut().set([0, 0], 1.0);
        System::new(atoms, Domain::cubic(10.0), Space::Serial)
    }

    #[test]
    fn nve_free_particle_moves_linearly() {
        let mut system = free_particle_system();
        let mut nve = FixNve;
        for _ in 0..10 {
            nve.initial_integrate(&mut system, 0.1);
            nve.final_integrate(&mut system, 0.1);
        }
        let p = system.atoms.pos(0);
        assert!((p[0] - 6.0).abs() < 1e-12);
        assert_eq!(system.atoms.v.h_view().at([0, 0]), 1.0);
    }

    #[test]
    fn nve_constant_force_matches_kinematics() {
        let mut system = free_particle_system();
        system.atoms.v.h_view_mut().set([0, 0], 0.0);
        let mut nve = FixNve;
        let dt = 0.01;
        let nsteps = 100;
        // Constant force present from the start (reapplied each step).
        system.atoms.f.h_view_mut().set([0, 0], 2.0);
        for _ in 0..nsteps {
            nve.initial_integrate(&mut system, dt);
            // constant F = 2 (reapplied each step after the drift).
            system.atoms.f.h_view_mut().set([0, 0], 2.0);
            system.atoms.modified(&Space::Serial, Mask::F);
            nve.final_integrate(&mut system, dt);
        }
        let t = dt * nsteps as f64;
        // x = x0 + ½at² exactly for velocity Verlet with constant force.
        let p = system.atoms.pos(0);
        assert!(
            (p[0] - (5.0 + 0.5 * 2.0 * t * t)).abs() < 1e-9,
            "x = {}",
            p[0]
        );
        let v = system.atoms.v.h_view().at([0, 0]);
        assert!((v - 2.0 * t).abs() < 1e-9);
    }

    #[test]
    fn gaussian_hash_statistics() {
        let n = 100_000;
        let mut mean = 0.0;
        let mut var = 0.0;
        for i in 0..n {
            let g = gaussian_hash(42, 7, i, 0);
            mean += g;
            var += g * g;
        }
        mean /= n as f64;
        var /= n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        // Deterministic.
        assert_eq!(gaussian_hash(1, 2, 3, 4), gaussian_hash(1, 2, 3, 4));
        assert_ne!(gaussian_hash(1, 2, 3, 4), gaussian_hash(1, 2, 3, 5));
    }

    #[test]
    fn langevin_damps_fast_particle() {
        // At T=0 the thermostat is pure friction: F = -(m/damp) v.
        let mut system = free_particle_system();
        let mut lang = FixLangevin::new(0.0, 0.5, 9);
        system.atoms.zero_forces();
        lang.post_force(&mut system, 0.005, 0);
        let f = system.atoms.f.h_view().at([0, 0]);
        assert!((f - (-1.0 / 0.5)).abs() < 1e-12, "f = {f}");
    }

    #[test]
    fn nvt_regulates_temperature() {
        use crate::lattice::{create_velocities, Lattice, LatticeKind};
        use crate::pair::lj::LjCut;
        use crate::pair::PairKokkos;
        use crate::sim::Simulation;
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let mut atoms = crate::atom::AtomData::from_positions(&lat.positions(4, 4, 4));
        create_velocities(&mut atoms, &crate::units::Units::lj(), 0.3, 99);
        let space = Space::Threads;
        let system = System::new(atoms, lat.domain(4, 4, 4), space.clone());
        let pair = PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &space);
        let mut sim = Simulation::new(system, Box::new(pair))
            .with_fixes(vec![Box::new(FixNvt::new(1.0, 0.1))]);
        sim.run(800);
        // Average over a window.
        let mut acc = 0.0;
        for _ in 0..20 {
            sim.run(10);
            acc += crate::compute::temperature(&sim.system.atoms, &sim.system.units);
        }
        let t_avg = acc / 20.0;
        assert!((t_avg - 1.0).abs() < 0.2, "T_avg = {t_avg}");
    }

    #[test]
    fn momentum_fix_zeroes_drift() {
        let mut system = free_particle_system();
        // Give the single particle (and thus the system) momentum.
        system.atoms.v.h_view_mut().set([0, 1], 3.0);
        let mut fix = FixMomentum { every: 1 };
        fix.post_force(&mut system, 0.005, 1);
        let vh = system.atoms.v.h_view();
        for k in 0..3 {
            assert!(vh.at([0, k]).abs() < 1e-12);
        }
    }

    #[test]
    fn setforce_clamps_components() {
        let mut system = free_particle_system();
        system.atoms.f.h_view_mut().set([0, 0], 5.0);
        system.atoms.f.h_view_mut().set([0, 2], -2.0);
        let mut fix = FixSetForce {
            first_n: 1,
            fx: Some(0.0),
            fy: None,
            fz: Some(1.0),
        };
        fix.post_force(&mut system, 0.005, 0);
        let fh = system.atoms.f.h_view();
        assert_eq!(fh.at([0, 0]), 0.0);
        assert_eq!(fh.at([0, 2]), 1.0);
    }
}
