//! The simulation driver: owns the system, styles, and neighbor state,
//! and advances the velocity-Verlet timestep loop with
//! rebuild-on-displacement neighboring and forward/reverse ghost
//! communication — the `run` command of §2.1.

use crate::atom::{AtomData, Mask};
use crate::comm::brick::{CommFailure, MultiRankRun, RunSpec};
use crate::comm::{Comm, CommError, CommSpec, FaultConfig, FaultStats, GhostMap, SingleRankComm};
use crate::compute;
use crate::domain::Domain;
use crate::fix::Fix;
use crate::neighbor::{max_displacement_sq, NeighborList, NeighborSettings};
use crate::pair::{PairResults, PairStyle};
use crate::units::Units;
use lkk_kokkos::{profile, Space};

/// The simulated physical system: atoms in a periodic box, bound to an
/// execution space and a communication layer.
#[derive(Debug)]
pub struct System {
    pub atoms: AtomData,
    /// The *global* simulation box (identical on every rank of a
    /// multi-rank run; sub-domain bounds live inside the [`Comm`]).
    pub domain: Domain,
    pub space: Space,
    pub units: Units,
    pub ghosts: GhostMap,
    /// The communication layer (ghost construction + exchanges).
    /// `None` only transiently while an exchange borrows the system.
    pub comm: Option<Box<dyn Comm>>,
    /// Deferred comm failure from an exchange invoked through an
    /// infallible hook (e.g. [`System::forward_ghost_scalar`] inside a
    /// pair style's `compute`); the driver surfaces it at the next
    /// fallible boundary instead of losing it.
    pub comm_error: Option<CommError>,
}

impl System {
    pub fn new(atoms: AtomData, domain: Domain, space: Space) -> Self {
        System {
            atoms,
            domain,
            space,
            units: Units::lj(),
            ghosts: GhostMap::default(),
            comm: Some(Box::new(SingleRankComm)),
            comm_error: None,
        }
    }

    pub fn with_units(mut self, units: Units) -> Self {
        self.units = units;
        self
    }

    /// Replace the communication layer (e.g. with a multi-rank brick).
    pub fn with_comm(mut self, comm: Box<dyn Comm>) -> Self {
        self.comm = Some(comm);
        self
    }

    /// Run `f` with the comm layer temporarily taken out of the system
    /// (so it can mutably borrow both).
    pub fn with_comm_taken<R>(&mut self, f: impl FnOnce(&mut System, &mut dyn Comm) -> R) -> R {
        let mut comm = self.comm.take().expect("comm layer is already borrowed");
        let result = f(self, comm.as_mut());
        self.comm = Some(comm);
        result
    }

    /// Forward a per-atom scalar (length `nall`) owner → ghost through
    /// the comm layer — the hook pair styles with intermediate per-atom
    /// state (EAM's F′(ρ)) call from inside `compute`.
    ///
    /// Pair styles have no error channel, so a comm failure here is
    /// *deferred* into [`System::comm_error`]: the exchange that failed
    /// has already drained its retry budget, and once the error is
    /// latched every later exchange this step is skipped (the data is
    /// garbage anyway — the driver aborts before it is observable).
    pub fn forward_ghost_scalar(&mut self, values: &mut [f64]) {
        if self.comm_error.is_some() {
            return;
        }
        if let Err(err) = self.with_comm_taken(|system, comm| comm.forward_scalar(system, values)) {
            self.comm_error = Some(err);
        }
    }
}

/// One thermo output row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermoRow {
    pub step: u64,
    pub temp: f64,
    pub e_pair: f64,
    pub e_kinetic: f64,
    pub e_total: f64,
    pub pressure: f64,
}

/// Wall-clock breakdown of a run (the timing summary LAMMPS prints):
/// seconds spent in each phase of the timestep loop. Phases are timed
/// through the `lkk_kokkos::profile` region layer ("step/integrate",
/// "step/neighbor", "step/pair", with comm nested under the enclosing
/// phase), so any registered [`lkk_gpusim::ProfileSubscriber`] observes
/// the same phase boundaries this summary reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    pub pair: f64,
    pub neighbor: f64,
    pub comm: f64,
    pub integrate: f64,
    /// Halo (border/ghost) construction seconds inside the comm layer —
    /// a subset of `neighbor`, not added to `total()`.
    pub halo: f64,
    /// Atom-migration seconds inside the comm layer — also a subset of
    /// `neighbor`.
    pub migrate: f64,
    pub steps: u64,
}

impl Timings {
    pub fn total(&self) -> f64 {
        self.pair + self.neighbor + self.comm + self.integrate
    }

    /// Render the LAMMPS-style breakdown table.
    pub fn summary(&self) -> String {
        let t = self.total().max(1e-300);
        let mut text = format!(
            "Loop time breakdown over {} steps ({:.3} s):\n  Pair     {:>9.3} s ({:>5.1}%)\n  Neigh    {:>9.3} s ({:>5.1}%)\n  Comm     {:>9.3} s ({:>5.1}%)\n  Integrate{:>9.3} s ({:>5.1}%)",
            self.steps,
            t,
            self.pair,
            100.0 * self.pair / t,
            self.neighbor,
            100.0 * self.neighbor / t,
            self.comm,
            100.0 * self.comm / t,
            self.integrate,
            100.0 * self.integrate / t,
        );
        if self.halo > 0.0 || self.migrate > 0.0 {
            text.push_str(&format!(
                "\n  (neigh: halo {:>9.3} s, migrate {:>9.3} s)",
                self.halo, self.migrate
            ));
        }
        text
    }
}

/// A running simulation: system + pair style + fixes + neighbor state.
pub struct Simulation {
    pub system: System,
    pub pair: Box<dyn PairStyle>,
    pub fixes: Vec<Box<dyn Fix>>,
    pub settings: NeighborSettings,
    pub dt: f64,
    pub thermo_every: usize,
    pub verbose: bool,
    /// Appendix C.1's `-pk kokkos pair/only on`: keep the pair style on
    /// the device but "reverse offload" integration (and comm) to the
    /// host, amortizing launch latencies at small per-GPU problem
    /// sizes. The DualView sync machinery moves the data automatically
    /// (and the transfer counters in `lkk_kokkos::profile` price it).
    pub pair_only: bool,
    pub step: u64,
    pub last_results: PairResults,
    pub thermo: Vec<ThermoRow>,
    pub rebuild_count: u64,
    /// Cumulative wall-clock phase breakdown (LAMMPS' loop summary).
    pub timings: Timings,
    /// Spatially sort owned atoms every this many neighbor rebuilds
    /// (LAMMPS' `atom_modify sort`), improving cache locality of the
    /// pair kernels. `0` (the default) disables sorting: reordering
    /// atoms permutes force-accumulation order, which perturbs
    /// trajectories at float precision — the committed perf-smoke
    /// counter baselines are recorded unsorted.
    pub sort_every: usize,
    list: Option<NeighborList>,
    x_at_build: Vec<[f64; 3]>,
}

impl Simulation {
    /// Wire a system to a pair style with `fix nve` and default
    /// neighboring (0.3 skin, list style chosen by the pair style).
    pub fn new(system: System, pair: Box<dyn PairStyle>) -> Self {
        let settings = NeighborSettings::new(pair.cutoff(), 0.3, pair.wants_half_list());
        Simulation {
            system,
            pair,
            fixes: vec![Box::new(crate::fix::FixNve)],
            settings,
            dt: 0.005,
            thermo_every: 0,
            verbose: false,
            pair_only: false,
            step: 0,
            last_results: PairResults::default(),
            thermo: Vec::new(),
            rebuild_count: 0,
            timings: Timings::default(),
            sort_every: 0,
            list: None,
            x_at_build: Vec::new(),
        }
    }

    /// Replace the fix list (e.g. to add a Langevin thermostat).
    pub fn with_fixes(mut self, fixes: Vec<Box<dyn Fix>>) -> Self {
        self.fixes = fixes;
        self
    }

    /// Current neighbor list, building on first use.
    pub fn neighbor_list(&mut self) -> &NeighborList {
        if self.list.is_none() {
            self.rebuild();
        }
        self.list.as_ref().unwrap()
    }

    /// Panicking convenience wrapper over [`Simulation::try_rebuild`]
    /// for single-rank callers (a single-rank comm never fails).
    fn rebuild(&mut self) {
        self.try_rebuild()
            .unwrap_or_else(|e| panic!("communication failed: {e}"));
    }

    fn try_rebuild(&mut self) -> Result<(), CommError> {
        let space = self.system.space.clone();
        if self.sort_every > 0
            && self.rebuild_count > 0
            && (self.rebuild_count as usize).is_multiple_of(self.sort_every)
        {
            // Spatial sort permutes every per-atom field on the host;
            // ghosts and the list are rebuilt right below.
            self.system.atoms.sync(&Space::Serial, Mask::ALL);
            crate::neighbor::spatial_sort(
                &mut self.system.atoms,
                &self.system.domain,
                self.settings.cutneigh(),
            );
        }
        self.system.atoms.sync(&Space::Serial, Mask::X);
        let cutneigh = self.settings.cutneigh();
        // Report cumulative pair seconds before the exchange: the load
        // balancer's (advisory) PairTime weighting reads it.
        let pair_seconds = self.timings.pair;
        self.system.with_comm_taken(|system, comm| {
            comm.note_work(pair_seconds);
            comm.borders(system, cutneigh)
        })?;
        self.system.atoms.modified(&Space::Serial, Mask::ALL);
        self.system.atoms.sync(&space, Mask::X | Mask::TYPE);
        // Persistent list: refill the existing buffers in place.
        match &mut self.list {
            Some(list) => {
                list.rebuild(
                    &self.system.atoms,
                    &self.system.domain,
                    &self.settings,
                    &space,
                );
            }
            None => {
                self.list = Some(NeighborList::build(
                    &self.system.atoms,
                    &self.system.domain,
                    &self.settings,
                    &space,
                ));
            }
        }
        self.x_at_build.clear();
        self.x_at_build
            .extend((0..self.system.atoms.nlocal).map(|i| self.system.atoms.pos(i)));
        self.rebuild_count += 1;
        if profile::has_subscribers() {
            // Counter samples at every rebuild: timeline consumers plot
            // these as per-rank tracks (owned-atom drift is the load-
            // imbalance signal), metrics registries gauge/histogram
            // them. All values are deterministic counters.
            profile::note_counter("owned_atoms", self.system.atoms.nlocal as f64);
            profile::note_counter("ghost_atoms", self.system.atoms.nghost as f64);
            if let Some(list) = &self.list {
                profile::note_counter("neigh_pairs", list.total_pairs as f64);
                profile::note_counter("neigh_avg", list.avg_neighbors());
            }
        }
        Ok(())
    }

    /// Heap growths of the persistent neighbor-list buffers since the
    /// first build (0 once capacity has stabilized; see
    /// `docs/performance.md`).
    pub fn neighbor_grow_count(&self) -> u64 {
        self.list.as_ref().map_or(0, |l| l.grow_count())
    }

    fn needs_rebuild(&self) -> bool {
        match &self.list {
            None => true,
            Some(_) => {
                let half_skin = 0.5 * self.settings.skin;
                max_displacement_sq(&self.system.atoms, &self.x_at_build, &self.system.domain)
                    > half_skin * half_skin
            }
        }
    }

    /// Compute forces for the current configuration (including ghost
    /// refresh), storing energy/virial in `last_results`. Panicking
    /// wrapper over [`Simulation::try_compute_forces`].
    pub fn compute_forces(&mut self) {
        self.try_compute_forces()
            .unwrap_or_else(|e| panic!("communication failed: {e}"));
    }

    /// Fallible [`Simulation::compute_forces`]: also surfaces a
    /// [`CommError`] deferred by a mid-compute exchange (EAM's scalar
    /// forward) through [`System::comm_error`].
    pub fn try_compute_forces(&mut self) -> Result<(), CommError> {
        // Position changes since the last neighbor build flow to ghosts.
        {
            let comm_region = profile::begin_region("comm");
            self.system.atoms.sync(&Space::Serial, Mask::X);
            self.system
                .with_comm_taken(|system, comm| comm.forward(system))?;
            self.system.atoms.modified(&Space::Serial, Mask::X);
            self.timings.comm += comm_region.finish();
        }
        let list = self.list.as_ref().expect("neighbor list not built");
        self.last_results = self.pair.compute(&mut self.system, list, true);
        if let Some(err) = self.system.comm_error.take() {
            return Err(err);
        }
        if self.pair.needs_reverse_comm() {
            let comm_region = profile::begin_region("comm");
            self.system.atoms.sync(&Space::Serial, Mask::F);
            self.system
                .with_comm_taken(|system, comm| comm.reverse(system))?;
            self.system.atoms.modified(&Space::Serial, Mask::F);
            self.timings.comm += comm_region.finish();
        }
        Ok(())
    }

    /// One-time setup: neighbor build + initial force evaluation.
    /// Panicking wrapper over [`Simulation::try_setup`].
    pub fn setup(&mut self) {
        self.try_setup()
            .unwrap_or_else(|e| panic!("communication failed: {e}"));
    }

    /// Fallible [`Simulation::setup`].
    pub fn try_setup(&mut self) -> Result<(), CommError> {
        if self.list.is_none() {
            self.try_rebuild()?;
            self.try_compute_forces()?;
            self.record_thermo();
        }
        Ok(())
    }

    /// Advance `nsteps` timesteps. Panicking wrapper over
    /// [`Simulation::try_run`] — the ergonomic entry point everywhere a
    /// comm failure is impossible (single rank) or fatal anyway.
    pub fn run(&mut self, nsteps: u64) {
        self.try_run(nsteps)
            .unwrap_or_else(|e| panic!("communication failed: {e}"));
    }

    /// Advance `nsteps` timesteps, returning the first [`CommError`]
    /// instead of panicking. On `Err` the simulation state is
    /// mid-step and must not be stepped further; the multi-rank driver
    /// tears the run down and reports a `CommFailure`.
    pub fn try_run(&mut self, nsteps: u64) -> Result<(), CommError> {
        self.try_setup()?;
        let device_space = self.system.space.clone();
        let integrate_space = if self.pair_only && device_space.is_device() {
            Space::Threads
        } else {
            device_space.clone()
        };
        for _ in 0..nsteps {
            self.step += 1;
            self.timings.steps += 1;
            let dt = self.dt;
            let step_region = profile::begin_region("step");
            {
                let integrate_region = profile::begin_region("integrate");
                self.system.space = integrate_space.clone();
                for f in &mut self.fixes {
                    f.initial_integrate(&mut self.system, dt);
                }
                self.system.space = device_space.clone();
                self.timings.integrate += integrate_region.finish();
            }
            {
                let neighbor_region = profile::begin_region("neighbor");
                if self.step.is_multiple_of(self.settings.every as u64) {
                    self.system.atoms.sync(&Space::Serial, Mask::X);
                    // The rebuild decision is collective: every rank
                    // must agree or the exchange sequences desync.
                    let local = self.needs_rebuild();
                    let global = self
                        .system
                        .with_comm_taken(|_, comm| comm.allreduce_or(local));
                    match global {
                        Ok(true) => self.try_rebuild()?,
                        Ok(false) => {}
                        Err(err) => {
                            self.timings.neighbor += neighbor_region.finish();
                            return Err(err);
                        }
                    }
                }
                self.timings.neighbor += neighbor_region.finish();
            }
            {
                // Comm inside force computation is nested ("step/pair/comm")
                // and counted in both phases, as LAMMPS' breakdown does.
                let pair_region = profile::begin_region("pair");
                let forces = self.try_compute_forces();
                self.timings.pair += pair_region.finish();
                forces?;
            }
            {
                let integrate_region = profile::begin_region("integrate");
                let step = self.step;
                self.system.space = integrate_space.clone();
                for f in &mut self.fixes {
                    f.post_force(&mut self.system, dt, step);
                }
                for f in &mut self.fixes {
                    f.final_integrate(&mut self.system, dt);
                }
                self.system.space = device_space.clone();
                self.timings.integrate += integrate_region.finish();
            }
            drop(step_region);
            if self.thermo_every > 0 && self.step.is_multiple_of(self.thermo_every as u64) {
                self.record_thermo();
            }
        }
        if let Some(comm) = &self.system.comm {
            let [halo, migrate] = comm.phase_seconds();
            self.timings.halo = halo;
            self.timings.migrate = migrate;
        }
        if self.verbose && nsteps > 0 {
            println!("{}", self.timings.summary());
        }
        Ok(())
    }

    fn record_thermo(&mut self) {
        self.system.atoms.sync(&Space::Serial, Mask::V);
        let row = self.thermo_row();
        if self.verbose {
            if self.thermo.is_empty() {
                println!(
                    "{:>10} {:>12} {:>14} {:>14} {:>14} {:>12}",
                    "Step", "Temp", "E_pair", "E_kin", "TotEng", "Press"
                );
            }
            println!(
                "{:>10} {:>12.6} {:>14.8} {:>14.8} {:>14.8} {:>12.6}",
                row.step, row.temp, row.e_pair, row.e_kinetic, row.e_total, row.pressure
            );
        }
        self.thermo.push(row);
    }

    /// The current thermodynamic state.
    pub fn thermo_row(&self) -> ThermoRow {
        let atoms = &self.system.atoms;
        let units = &self.system.units;
        let temp = compute::temperature(atoms, units);
        let ke = compute::kinetic_energy(atoms, units);
        let e_pair = self.last_results.energy;
        ThermoRow {
            step: self.step,
            temp,
            e_pair,
            e_kinetic: ke,
            e_total: e_pair + ke,
            pressure: compute::pressure(
                atoms,
                units,
                &self.system.domain,
                self.last_results.virial,
            ),
        }
    }

    /// Total energy (pair + kinetic) of the current state. Syncs
    /// velocities back from the device if necessary.
    pub fn total_energy(&mut self) -> f64 {
        self.system.atoms.sync(&Space::Serial, Mask::V);
        self.thermo_row().e_total
    }

    /// Cumulative exchange counters of the comm layer.
    pub fn comm_stats(&self) -> crate::comm::CommStats {
        self.system
            .comm
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Heap growths of the comm layer's persistent message-buffer pool
    /// (0 in steady state; see `docs/performance.md`).
    pub fn comm_grow_count(&self) -> u64 {
        self.system.comm.as_ref().map_or(0, |c| c.grow_count())
    }

    /// Cumulative fault-injection / recovery counters of the comm layer
    /// (all zero unless a fault plan is installed).
    pub fn comm_fault_stats(&self) -> FaultStats {
        self.system
            .comm
            .as_ref()
            .map(|c| c.fault_stats())
            .unwrap_or_default()
    }
}

/// Per-rank pair-style constructor installed by
/// [`SimulationBuilder::pair_with`].
type PairFactory = Box<dyn Fn(usize) -> Box<dyn PairStyle> + Send + Sync>;
/// Per-rank fix-stack constructor installed by
/// [`SimulationBuilder::fixes_with`].
type FixesFactory = Box<dyn Fn(usize) -> Vec<Box<dyn Fix>> + Send + Sync>;

/// Fluent constructor consolidating the accreted `Simulation` setters
/// (`with_units`, `with_fixes`, `sort_every`, comm choice, ...) into one
/// place:
///
/// ```
/// use lkk_core::prelude::*;
/// let atoms = AtomData::from_positions(&[[1.0, 1.0, 1.0], [2.5, 1.0, 1.0]]);
/// let mut sim = SimulationBuilder::new(atoms, Domain::cubic(10.0))
///     .pair(PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &Space::Serial))
///     .dt(0.002)
///     .thermo_every(10)
///     .build();
/// sim.run(5);
/// ```
pub struct SimulationBuilder {
    atoms: AtomData,
    domain: Domain,
    space: Space,
    units: Units,
    pair: Option<Box<dyn PairStyle>>,
    pair_factory: Option<PairFactory>,
    fixes: Option<Vec<Box<dyn Fix>>>,
    fixes_factory: Option<FixesFactory>,
    comm_spec: CommSpec,
    comm_boxed: Option<Box<dyn Comm>>,
    warmup_steps: u64,
    fault: Option<FaultConfig>,
    dt: Option<f64>,
    thermo_every: usize,
    verbose: bool,
    pair_only: bool,
    sort_every: usize,
    skin: Option<f64>,
    neighbor_every: Option<usize>,
}

impl SimulationBuilder {
    /// Start from atoms in a periodic box; everything else defaults
    /// (serial space, LJ units, single-rank comm, `fix nve`, dt 0.005).
    pub fn new(atoms: AtomData, domain: Domain) -> Self {
        SimulationBuilder {
            atoms,
            domain,
            space: Space::Serial,
            units: Units::lj(),
            pair: None,
            pair_factory: None,
            fixes: None,
            fixes_factory: None,
            comm_spec: CommSpec::Single,
            comm_boxed: None,
            warmup_steps: 0,
            fault: None,
            dt: None,
            thermo_every: 0,
            verbose: false,
            pair_only: false,
            sort_every: 0,
            skin: None,
            neighbor_every: None,
        }
    }

    /// Execution space (serial, threads, or a simulated device).
    pub fn space(mut self, space: Space) -> Self {
        self.space = space;
        self
    }

    /// Unit system (`lj`, `metal`, `real`).
    pub fn units(mut self, units: Units) -> Self {
        self.units = units;
        self
    }

    /// The pair style (required).
    pub fn pair(mut self, pair: impl PairStyle + 'static) -> Self {
        self.pair = Some(Box::new(pair));
        self
    }

    /// The pair style, pre-boxed (e.g. out of the style registry).
    pub fn pair_boxed(mut self, pair: Box<dyn PairStyle>) -> Self {
        self.pair = Some(pair);
        self
    }

    /// Replace the fix list entirely (default: `fix nve`).
    pub fn fixes(mut self, fixes: Vec<Box<dyn Fix>>) -> Self {
        self.fixes = Some(fixes);
        self
    }

    /// Append one fix to the list (keeps the default `fix nve`).
    pub fn add_fix(mut self, fix: impl Fix + 'static) -> Self {
        self.fixes
            .get_or_insert_with(|| vec![Box::new(crate::fix::FixNve)])
            .push(Box::new(fix));
        self
    }

    /// Communication layout (default: [`CommSpec::Single`]). A
    /// `CommSpec::Brick { .. }` builder must be driven through
    /// [`SimulationBuilder::run`] (with a per-rank
    /// [`SimulationBuilder::pair_with`] factory); [`build`] is
    /// single-rank only.
    ///
    /// [`build`]: SimulationBuilder::build
    pub fn comm(mut self, spec: CommSpec) -> Self {
        self.comm_spec = spec;
        self
    }

    /// Install a concrete communication layer (low-level escape hatch;
    /// the pre-`CommSpec` signature of `comm`). Only honored by
    /// [`SimulationBuilder::build`].
    pub fn comm_boxed(mut self, comm: Box<dyn Comm>) -> Self {
        self.comm_boxed = Some(comm);
        self
    }

    /// Per-rank pair-style factory, called once per rank of a
    /// [`SimulationBuilder::run`] — pair styles hold per-instance
    /// scratch and cannot be shared across rank threads. Required for
    /// `CommSpec::Brick`; single-rank paths fall back to it (rank 0)
    /// when no [`SimulationBuilder::pair`] is set.
    pub fn pair_with(
        mut self,
        factory: impl Fn(usize) -> Box<dyn PairStyle> + Send + Sync + 'static,
    ) -> Self {
        self.pair_factory = Some(Box::new(factory));
        self
    }

    /// Per-rank fix-list factory for [`SimulationBuilder::run`]
    /// (default: `fix nve` on every rank).
    pub fn fixes_with(
        mut self,
        factory: impl Fn(usize) -> Vec<Box<dyn Fix>> + Send + Sync + 'static,
    ) -> Self {
        self.fixes_factory = Some(Box::new(factory));
        self
    }

    /// Warmup steps a [`SimulationBuilder::run`] executes before its
    /// measured steps (the grow counters are snapshotted in between;
    /// see [`MultiRankRun`]).
    pub fn warmup(mut self, steps: u64) -> Self {
        self.warmup_steps = steps;
        self
    }

    /// Install a seeded fault-injection config on every rank of a
    /// [`SimulationBuilder::run`].
    pub fn fault(mut self, cfg: FaultConfig) -> Self {
        self.fault = Some(cfg);
        self
    }

    /// Timestep size.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }

    /// Thermo output interval (0 = off).
    pub fn thermo_every(mut self, every: usize) -> Self {
        self.thermo_every = every;
        self
    }

    /// Print thermo rows and the timing summary.
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Appendix C.1's `pair/only` reverse offload.
    pub fn pair_only(mut self, pair_only: bool) -> Self {
        self.pair_only = pair_only;
        self
    }

    /// Spatially sort atoms every N neighbor rebuilds (0 = off).
    pub fn sort_every(mut self, every: usize) -> Self {
        self.sort_every = every;
        self
    }

    /// Neighbor skin distance (default 0.3).
    pub fn skin(mut self, skin: f64) -> Self {
        self.skin = Some(skin);
        self
    }

    /// Check the rebuild trigger every N steps (default 1).
    pub fn neighbor_every(mut self, every: usize) -> Self {
        self.neighbor_every = Some(every);
        self
    }

    /// Wire everything into a ready-to-run, single-rank [`Simulation`].
    ///
    /// Panics if no pair style was set, or if the builder was
    /// configured for `CommSpec::Brick` (drive that through
    /// [`SimulationBuilder::run`]).
    pub fn build(self) -> Simulation {
        assert!(
            matches!(self.comm_spec, CommSpec::Single),
            "SimulationBuilder::build is single-rank; drive CommSpec::Brick through .run(steps)"
        );
        let pair = match (self.pair, &self.pair_factory) {
            (Some(pair), _) => pair,
            (None, Some(factory)) => factory(0),
            (None, None) => panic!("SimulationBuilder: a pair style is required"),
        };
        let fixes = self
            .fixes
            .or_else(|| self.fixes_factory.as_ref().map(|factory| factory(0)));
        let mut system = System::new(self.atoms, self.domain, self.space).with_units(self.units);
        if let Some(comm) = self.comm_boxed {
            system.comm = Some(comm);
        }
        let mut sim = Simulation::new(system, pair);
        if let Some(fixes) = fixes {
            sim.fixes = fixes;
        }
        if let Some(dt) = self.dt {
            sim.dt = dt;
        }
        if let Some(skin) = self.skin {
            sim.settings.skin = skin;
        }
        if let Some(every) = self.neighbor_every {
            sim.settings.every = every;
        }
        sim.thermo_every = self.thermo_every;
        sim.verbose = self.verbose;
        sim.pair_only = self.pair_only;
        sim.sort_every = self.sort_every;
        sim
    }

    /// Run `steps` timesteps through the configured [`CommSpec`] and
    /// gather the result — the unified driver entry point. Single- and
    /// multi-rank runs share this code path and return the same
    /// [`MultiRankRun`] shape:
    ///
    /// ```ignore
    /// let run = SimulationBuilder::new(atoms, domain)
    ///     .pair_with(|_rank| Box::new(PairKokkos::new(lj, &Space::Serial)))
    ///     .comm(CommSpec::Brick { ranks: 8, balance: Some(BalancePolicy::default()) })
    ///     .warmup(10)
    ///     .run(100)?;
    /// ```
    ///
    /// `CommSpec::Brick` requires [`SimulationBuilder::pair_with`] (a
    /// boxed pair style cannot be shared across rank threads); fixes
    /// default to `fix nve` per rank unless
    /// [`SimulationBuilder::fixes_with`] is set.
    pub fn run(self, steps: u64) -> Result<MultiRankRun, CommFailure> {
        let mut spec = RunSpec::new(&self.atoms, self.domain, steps);
        spec.units = self.units;
        spec.space = self.space.clone();
        spec.warmup_steps = self.warmup_steps;
        spec.fault = self.fault.clone();
        spec.comm = self.comm_spec;
        let SimulationBuilder {
            pair,
            pair_factory,
            fixes,
            fixes_factory,
            dt,
            thermo_every,
            verbose,
            pair_only,
            sort_every,
            skin,
            neighbor_every,
            ..
        } = self;
        let assemble = move |pair: Box<dyn PairStyle>,
                             fixes: Option<Vec<Box<dyn Fix>>>,
                             system: System|
              -> Simulation {
            let mut sim = Simulation::new(system, pair);
            if let Some(fixes) = fixes {
                sim.fixes = fixes;
            }
            if let Some(dt) = dt {
                sim.dt = dt;
            }
            if let Some(skin) = skin {
                sim.settings.skin = skin;
            }
            if let Some(every) = neighbor_every {
                sim.settings.every = every;
            }
            sim.thermo_every = thermo_every;
            sim.verbose = verbose;
            sim.pair_only = pair_only;
            sim.sort_every = sort_every;
            sim
        };
        match spec.comm {
            CommSpec::Single => {
                let pair = match (pair, &pair_factory) {
                    (Some(pair), _) => pair,
                    (None, Some(factory)) => factory(0),
                    (None, None) => panic!("SimulationBuilder: a pair style is required"),
                };
                let fixes = fixes.or_else(|| fixes_factory.as_ref().map(|factory| factory(0)));
                spec.run_single(|system| assemble(pair, fixes, system))
            }
            CommSpec::Brick { .. } => {
                assert!(
                    pair.is_none(),
                    "SimulationBuilder: .pair() is single-rank; use .pair_with(|rank| ...) for CommSpec::Brick"
                );
                assert!(
                    fixes.is_none(),
                    "SimulationBuilder: .fixes() is single-rank; use .fixes_with(|rank| ...) for CommSpec::Brick"
                );
                let pair_factory = pair_factory
                    .expect("SimulationBuilder: CommSpec::Brick requires .pair_with(|rank| ...)");
                spec.run(|rank, system| {
                    assemble(
                        pair_factory(rank),
                        fixes_factory.as_ref().map(|factory| factory(rank)),
                        system,
                    )
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{create_velocities, Lattice, LatticeKind};
    use crate::pair::lj::LjCut;
    use crate::pair::PairKokkos;

    fn lj_melt_sim(n: usize, space: Space, temp: f64) -> Simulation {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let mut atoms = AtomData::from_positions(&lat.positions(n, n, n));
        let units = Units::lj();
        create_velocities(&mut atoms, &units, temp, 87287);
        let system = System::new(atoms, lat.domain(n, n, n), space.clone());
        let pair = PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &space);
        Simulation::new(system, Box::new(pair))
    }

    #[test]
    fn nve_conserves_energy() {
        let mut sim = lj_melt_sim(4, Space::Threads, 1.44);
        sim.setup();
        let n = sim.system.atoms.nlocal as f64;
        // The Verlet total-energy error oscillates with the
        // discretization (amplitude ~1e-3·N for this melt at dt = 0.005,
        // any velocity seed), and the t=0 energy carries a one-time
        // shadow-Hamiltonian offset from the perfect-lattice start — so
        // neither an end-point sample nor a mean-vs-E(0) comparison
        // measures conservation. Compare the time-averaged energy of the
        // first and second halves of the run: secular drift would
        // separate them; the oscillation averages out below 1e-4/atom.
        let mut half_mean = [0.0f64; 2];
        for block in 0..10 {
            sim.run(10);
            half_mean[block / 5] += sim.total_energy() / 5.0;
        }
        let drift = ((half_mean[1] - half_mean[0]) / n).abs();
        assert!(drift < 1e-4, "per-atom secular drift {drift}");
    }

    #[test]
    fn melt_actually_melts() {
        // Starting from a perfect lattice at T=1.44, kinetic and
        // potential energy exchange: temperature drops towards ~0.7.
        let mut sim = lj_melt_sim(4, Space::Threads, 1.44);
        sim.thermo_every = 50;
        sim.run(150);
        let t_final = sim.thermo.last().unwrap().temp;
        assert!(t_final < 1.1, "T stayed at {t_final}");
        assert!(t_final > 0.3);
        assert!(sim.rebuild_count >= 2, "no neighbor rebuilds happened");
    }

    #[test]
    fn sorted_run_is_permutation_equivalent() {
        // `sort_every` only permutes atom order: matched by tag, the
        // sorted and unsorted trajectories must agree up to the float
        // noise introduced by the permuted accumulation order.
        let mut plain = lj_melt_sim(4, Space::Serial, 1.0);
        let mut sorted = lj_melt_sim(4, Space::Serial, 1.0);
        sorted.sort_every = 1;
        plain.run(60);
        sorted.run(60);
        assert!(
            sorted.rebuild_count >= 2,
            "no rebuild after setup — spatial sort never ran"
        );
        // Lookup-only test map (never iterated): order cannot leak.
        #[allow(clippy::disallowed_types)]
        let pos_by_tag = |sim: &Simulation| -> std::collections::HashMap<i64, [f64; 3]> {
            let tags = sim.system.atoms.tag.h_view();
            (0..sim.system.atoms.nlocal)
                .map(|i| (tags.at([i]), sim.system.atoms.pos(i)))
                .collect()
        };
        let pa = pos_by_tag(&plain);
        let pb = pos_by_tag(&sorted);
        assert_eq!(pa.len(), pb.len(), "sorting lost or duplicated atoms");
        for (tag, xa) in &pa {
            let xb = pb.get(tag).expect("tag missing after sort");
            for k in 0..3 {
                assert!(
                    (xa[k] - xb[k]).abs() < 1e-6,
                    "tag {tag} diverged: {xa:?} vs {xb:?}"
                );
            }
        }
        let de = (plain.total_energy() - sorted.total_energy()).abs();
        assert!(de < 1e-6, "energy diverged by {de}");
    }

    #[test]
    fn steady_state_reuses_pooled_buffers() {
        // Acceptance gate for the hot-path pooling: once capacities have
        // stabilized, repeated rebuilds and force calls must not grow the
        // persistent neighbor or scatter buffers (pool-hit statistics as
        // a stand-in for a counting allocator; see docs/performance.md).
        let mut sim = lj_melt_sim(4, Space::Threads, 1.44);
        sim.run(100); // warm-up: growth allowed while the melt spreads
        let rebuilds_before = sim.rebuild_count;
        let neigh_grow = sim.neighbor_grow_count();
        let scatter_grow = sim.pair.scatter_grow_count();
        sim.run(50);
        assert!(
            sim.rebuild_count > rebuilds_before,
            "measurement window saw no rebuilds"
        );
        assert_eq!(
            sim.neighbor_grow_count(),
            neigh_grow,
            "neighbor-list buffers grew in steady state"
        );
        assert_eq!(
            sim.pair.scatter_grow_count(),
            scatter_grow,
            "scatter buffers grew in steady state"
        );
    }

    #[test]
    fn serial_and_threads_trajectories_are_close() {
        // Not bitwise identical (reduction order differs) but tightly
        // close over a short run.
        let mut a = lj_melt_sim(4, Space::Serial, 1.0);
        let mut b = lj_melt_sim(4, Space::Threads, 1.0);
        a.run(20);
        b.run(20);
        let xa = a.system.atoms.pos(0);
        let xb = b.system.atoms.pos(0);
        for k in 0..3 {
            assert!((xa[k] - xb[k]).abs() < 1e-8);
        }
    }

    #[test]
    fn device_space_runs_and_logs() {
        let space = Space::device(lkk_gpusim::GpuArch::h100());
        let ctx = space.device_ctx().unwrap().clone();
        let mut sim = lj_melt_sim(4, space, 1.44);
        sim.run(100);
        assert!(ctx.log.len() > 5, "device kernels were not logged");
        // Energy still conserved on the simulated device (the total
        // oscillates with the Verlet discretization; no secular drift).
        let e0 = sim.thermo.first().map(|r| r.e_total).unwrap_or(0.0);
        let drift = (sim.total_energy() - e0) / sim.system.atoms.nlocal as f64;
        assert!(drift.abs() < 1e-3, "drift {drift}");
    }

    #[test]
    fn langevin_equilibrates_to_target() {
        let mut sim = lj_melt_sim(4, Space::Threads, 0.1);
        sim.fixes
            .push(Box::new(crate::fix::FixLangevin::new(1.0, 0.2, 123)));
        sim.run(600);
        // Average temperature of the last stretch near 1.0.
        sim.thermo_every = 10;
        let mut acc = 0.0;
        let mut count = 0;
        for _ in 0..20 {
            sim.run(10);
            acc += sim.thermo_row().temp;
            count += 1;
        }
        let t_avg = acc / count as f64;
        assert!((t_avg - 1.0).abs() < 0.15, "T_avg = {t_avg}");
    }

    #[test]
    fn pair_only_reverse_offload_matches_device_resident() {
        use lkk_kokkos::profile;
        // Device-resident reference.
        let mut resident = lj_melt_sim(4, Space::device(lkk_gpusim::GpuArch::h100()), 1.0);
        resident.run(20);
        let x_ref = resident.system.atoms.pos(5);

        // pair/only: integration on the host, pair on the device.
        profile::reset_transfer_totals();
        let mut offload = lj_melt_sim(4, Space::device(lkk_gpusim::GpuArch::h100()), 1.0);
        offload.pair_only = true;
        offload.run(20);
        let x_off = offload.system.atoms.pos(5);
        for k in 0..3 {
            assert!((x_ref[k] - x_off[k]).abs() < 1e-9, "trajectory diverged");
        }
        // The reverse offload pays per-step transfers (x down, f up).
        let (h2d, d2h, nh, nd) = profile::transfer_totals();
        assert!(nh >= 20 && nd >= 20, "transfers h2d={nh} d2h={nd}");
        assert!(h2d > 0 && d2h > 0);
    }

    #[test]
    fn phase_regions_flow_to_subscribers() {
        use lkk_gpusim::StatsAccumulator;
        use std::sync::Arc;
        let acc = Arc::new(StatsAccumulator::new());
        let id = profile::register_subscriber(acc.clone());
        let mut sim = lj_melt_sim(4, Space::Serial, 1.0);
        sim.run(3);
        profile::unregister_subscriber(id);
        let snap = acc.snapshot();
        // Other tests may run concurrently and contribute, so only
        // lower-bound the counts from our own 3 steps.
        assert!(snap.regions.get("step").copied().unwrap_or(0) >= 3);
        assert!(snap.regions.get("step/pair").copied().unwrap_or(0) >= 3);
        assert!(snap.regions.get("step/pair/comm").copied().unwrap_or(0) >= 3);
        assert!(snap.regions.get("step/integrate").copied().unwrap_or(0) >= 6);
        assert!(
            snap.launches.keys().any(|k| k.starts_with("PairCompute")),
            "pair kernel launches not observed: {:?}",
            snap.launches.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn timings_accumulate_and_summarize() {
        let mut sim = lj_melt_sim(4, Space::Threads, 1.0);
        sim.run(10);
        let t = sim.timings;
        assert_eq!(t.steps, 10);
        assert!(t.pair > 0.0);
        assert!(t.integrate > 0.0);
        assert!(t.total() > 0.0);
        let text = t.summary();
        assert!(text.contains("Pair"));
        assert!(text.contains("10 steps"));
    }
}
