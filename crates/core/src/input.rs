//! The input-script command interpreter (§2.1).
//!
//! "Users interact with LAMMPS through input scripts... Each step is
//! executed using one or more of a varied set of LAMMPS commands" —
//! immediate commands (e.g. `create_atoms`) execute when parsed;
//! persistent ones (`pair_style`, `fix`) create styles that live in the
//! subsequent simulation. The `suffix` and `package kokkos` commands
//! reproduce the §3.1 accelerator selection.

use crate::atom::AtomData;
use crate::domain::Domain;
use crate::fix::{Fix, FixLangevin, FixMomentum, FixNve, FixNvt, FixSetForce};
use crate::lattice::{create_velocities, Lattice, LatticeKind};
use crate::sim::{Simulation, System};
use crate::style::{PairSpec, StyleRegistry};
use crate::units::Units;
use lkk_gpusim::GpuArch;
use lkk_kokkos::Space;

/// The interpreter: mirrors the top-level LAMMPS class. Commands mutate
/// staged state; `run` assembles the [`Simulation`] and advances it.
pub struct Lammps {
    pub registry: StyleRegistry,
    units: Units,
    lattice: Option<Lattice>,
    cells: Option<(usize, usize, usize)>,
    atoms: Option<AtomData>,
    domain: Option<Domain>,
    ntypes: usize,
    masses: Vec<(usize, f64)>,
    pair_name: Option<String>,
    pair_spec: PairSpec,
    fix_cmds: Vec<Vec<String>>,
    dt: Option<f64>,
    thermo_every: usize,
    skin: f64,
    suffix: Option<String>,
    device_arch: Option<GpuArch>,
    pair_only: bool,
    pub sim: Option<Simulation>,
    pub verbose: bool,
}

impl Lammps {
    pub fn new(registry: StyleRegistry) -> Self {
        Lammps {
            registry,
            units: Units::lj(),
            lattice: None,
            cells: None,
            atoms: None,
            domain: None,
            ntypes: 1,
            masses: Vec::new(),
            pair_name: None,
            pair_spec: PairSpec::default(),
            fix_cmds: Vec::new(),
            dt: None,
            thermo_every: 0,
            skin: 0.3,
            suffix: None,
            device_arch: None,
            pair_only: false,
            sim: None,
            verbose: false,
        }
    }

    /// Run a whole script ( `#` comments, blank lines allowed).
    pub fn run_script(&mut self, script: &str) -> Result<(), String> {
        for (lineno, raw) in script.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            self.command(line)
                .map_err(|e| format!("line {}: '{}': {}", lineno + 1, line, e))?;
        }
        Ok(())
    }

    /// Execute a single command line.
    pub fn command(&mut self, line: &str) -> Result<(), String> {
        let tokens: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        let cmd = tokens[0].as_str();
        let args = &tokens[1..];
        match cmd {
            "units" => {
                self.units = Units::from_name(args.first().ok_or("units: missing name")?)
                    .ok_or("units: unknown system")?;
                Ok(())
            }
            "lattice" => {
                let kind = LatticeKind::from_name(args.first().ok_or("lattice: missing kind")?)
                    .ok_or("lattice: unknown kind")?;
                let rho: f64 = parse(args.get(1), "lattice density/constant")?;
                self.lattice = Some(Lattice::from_density(kind, rho));
                Ok(())
            }
            "create_box" => {
                let nx = parse(args.first(), "nx")?;
                let ny = parse(args.get(1), "ny")?;
                let nz = parse(args.get(2), "nz")?;
                let lat = self.lattice.ok_or("create_box: no lattice defined")?;
                self.cells = Some((nx, ny, nz));
                self.domain = Some(lat.domain(nx, ny, nz));
                Ok(())
            }
            "read_data" => {
                let path = args.first().ok_or("read_data: missing file")?;
                let file = std::fs::File::open(path).map_err(|e| format!("read_data: {e}"))?;
                let parsed = crate::data_io::read_data(std::io::BufReader::new(file))?;
                self.ntypes = parsed.ntypes;
                self.domain = Some(parsed.domain);
                self.atoms = Some(parsed.atoms);
                Ok(())
            }
            "write_data" => {
                let path = args.first().ok_or("write_data: missing file")?;
                let sim = self.sim.as_mut().ok_or("write_data: no simulation yet")?;
                sim.system
                    .atoms
                    .sync(&Space::Serial, crate::atom::Mask::ALL);
                let mut file =
                    std::fs::File::create(path).map_err(|e| format!("write_data: {e}"))?;
                crate::data_io::write_data(
                    &mut file,
                    &sim.system.atoms,
                    &sim.system.domain,
                    sim.system.atoms.mass.len(),
                )
                .map_err(|e| format!("write_data: {e}"))?;
                Ok(())
            }
            "create_atoms" => {
                let lat = self.lattice.ok_or("create_atoms: no lattice")?;
                let (nx, ny, nz) = self.cells.ok_or("create_atoms: no box")?;
                let mut atoms = AtomData::from_positions(&lat.positions(nx, ny, nz));
                atoms.mass = vec![1.0; self.ntypes];
                self.atoms = Some(atoms);
                Ok(())
            }
            "atom_types" => {
                self.ntypes = parse(args.first(), "ntypes")?;
                Ok(())
            }
            "mass" => {
                let t: usize = parse(args.first(), "type")?;
                let m: f64 = parse(args.get(1), "mass")?;
                self.masses.push((t - 1, m));
                Ok(())
            }
            "velocity" => {
                // velocity all create <T> <seed>
                if args.len() < 4 || args[0] != "all" || args[1] != "create" {
                    return Err("velocity: only 'velocity all create T seed' supported".into());
                }
                let t: f64 = parse(args.get(2), "temperature")?;
                let seed: u64 = parse(args.get(3), "seed")?;
                let atoms = self.atoms.as_mut().ok_or("velocity: no atoms")?;
                for &(t_idx, m) in &self.masses {
                    if t_idx < atoms.mass.len() {
                        atoms.mass[t_idx] = m;
                    }
                }
                create_velocities(atoms, &self.units, t, seed);
                Ok(())
            }
            "pair_style" => {
                self.pair_name = Some(args.first().ok_or("pair_style: missing name")?.clone());
                self.pair_spec.style_args = args[1..].to_vec();
                self.pair_spec.coeffs.clear();
                Ok(())
            }
            "pair_coeff" => {
                if self.pair_name.is_none() {
                    return Err("pair_coeff before pair_style".into());
                }
                self.pair_spec.coeffs.push(args.to_vec());
                Ok(())
            }
            "neighbor" => {
                self.skin = parse(args.first(), "skin")?;
                Ok(())
            }
            "fix" => {
                if args.len() < 3 {
                    return Err("fix: need id, group, style".into());
                }
                self.fix_cmds.push(args.to_vec());
                Ok(())
            }
            "timestep" => {
                self.dt = Some(parse(args.first(), "dt")?);
                Ok(())
            }
            "thermo" => {
                self.thermo_every = parse(args.first(), "interval")?;
                Ok(())
            }
            "suffix" => {
                let s = args.first().ok_or("suffix: missing value")?;
                self.suffix = if s == "off" { None } else { Some(s.clone()) };
                Ok(())
            }
            "package" => {
                // package kokkos device <arch> | package kokkos host
                if args.first().map(String::as_str) != Some("kokkos") {
                    return Err("package: only 'kokkos' supported".into());
                }
                match args.get(1).map(String::as_str) {
                    Some("host") | None => {
                        self.device_arch = None;
                        Ok(())
                    }
                    Some("device") => {
                        if args.get(3).map(String::as_str) == Some("pair/only") {
                            self.pair_only = true;
                        }
                        let arch = match args.get(2).map(String::as_str) {
                            None => GpuArch::h100(),
                            Some(name) => GpuArch::by_name(name)
                                .ok_or_else(|| format!("unknown device arch '{name}'"))?,
                        };
                        self.device_arch = Some(arch);
                        Ok(())
                    }
                    Some(o) => Err(format!("package kokkos: unknown option '{o}'")),
                }
            }
            "run" => {
                let n: u64 = parse(args.first(), "steps")?;
                self.run_steps(n)
            }
            other => Err(format!("unknown command '{other}'")),
        }
    }

    /// The execution space implied by `package kokkos` + `suffix`.
    fn space(&self) -> Space {
        match (&self.suffix, &self.device_arch) {
            (Some(_), Some(arch)) => Space::device(arch.clone()),
            (Some(_), None) => Space::Threads,
            (None, _) => Space::Serial,
        }
    }

    fn run_steps(&mut self, n: u64) -> Result<(), String> {
        if self.sim.is_none() {
            let atoms = self.atoms.take().ok_or("run: no atoms created")?;
            let domain = self.domain.ok_or("run: no box")?;
            let space = self.space();
            let mut spec = self.pair_spec.clone();
            spec.ntypes = self.ntypes;
            let pair_name = self.pair_name.clone().ok_or("run: no pair_style")?;
            let pair =
                self.registry
                    .create_pair(&pair_name, &spec, &space, self.suffix.as_deref())?;
            let mut atoms = atoms;
            for &(t_idx, m) in &self.masses {
                if t_idx < atoms.mass.len() {
                    atoms.mass[t_idx] = m;
                }
            }
            let system = System::new(atoms, domain, space).with_units(self.units);
            let mut fixes: Vec<Box<dyn Fix>> = Vec::new();
            for fc in &self.fix_cmds {
                match fc[2].as_str() {
                    "nve" => fixes.push(Box::new(FixNve)),
                    "nvt" => {
                        // fix 1 all nvt temp <T> <T> <Tdamp>
                        let t: f64 = parse(fc.get(4), "nvt T")?;
                        let damp: f64 = parse(fc.get(6), "nvt Tdamp")?;
                        fixes.push(Box::new(FixNvt::new(t, damp)));
                    }
                    "langevin" => {
                        let t: f64 = parse(fc.get(3), "langevin T")?;
                        let damp: f64 = parse(fc.get(5), "langevin damp")?;
                        let seed: u64 = parse(fc.get(6), "langevin seed")?;
                        fixes.push(Box::new(FixLangevin::new(t, damp, seed)));
                    }
                    "momentum" => {
                        let every: u64 = parse(fc.get(3), "momentum interval")?;
                        fixes.push(Box::new(FixMomentum { every }));
                    }
                    "setforce" => {
                        // fix 1 all setforce <fx|NULL> <fy|NULL> <fz|NULL>
                        let comp = |tok: Option<&String>| -> Result<Option<f64>, String> {
                            match tok.map(String::as_str) {
                                Some("NULL") => Ok(None),
                                Some(v) => Ok(Some(v.parse().map_err(|e| format!("{e}"))?)),
                                None => Err("setforce: missing component".into()),
                            }
                        };
                        fixes.push(Box::new(FixSetForce {
                            first_n: usize::MAX,
                            fx: comp(fc.get(3))?,
                            fy: comp(fc.get(4))?,
                            fz: comp(fc.get(5))?,
                        }));
                    }
                    other => return Err(format!("unknown fix style '{other}'")),
                }
            }
            if fixes.is_empty() {
                fixes.push(Box::new(FixNve));
            }
            let mut sim = Simulation::new(system, pair).with_fixes(fixes);
            sim.settings.skin = self.skin;
            if let Some(dt) = self.dt {
                sim.dt = dt;
            }
            sim.thermo_every = self.thermo_every;
            sim.verbose = self.verbose;
            sim.pair_only = self.pair_only;
            self.sim = Some(sim);
        }
        self.sim.as_mut().unwrap().run(n);
        Ok(())
    }
}

fn parse<T: std::str::FromStr>(tok: Option<&String>, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    tok.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|e| format!("bad {what}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MELT: &str = r#"
        # classic LJ melt benchmark
        units lj
        lattice fcc 0.8442
        create_box 4 4 4
        create_atoms
        mass 1 1.0
        velocity all create 1.44 87287
        pair_style lj/cut 2.5
        pair_coeff 1 1 1.0 1.0
        neighbor 0.3
        fix 1 all nve
        timestep 0.005
        thermo 50
        run 100
    "#;

    #[test]
    fn melt_script_runs_and_conserves_energy() {
        let mut lmp = Lammps::new(StyleRegistry::core());
        lmp.run_script(MELT).unwrap();
        let sim = lmp.sim.as_ref().unwrap();
        assert_eq!(sim.step, 100);
        assert_eq!(sim.system.atoms.nlocal, 256);
        let rows = &sim.thermo;
        assert!(rows.len() >= 3);
        // The Verlet total-energy error oscillates with the discretization
        // (amplitude ~1e-3·N for this melt at dt = 0.005, any velocity
        // seed); a single-step sample is a phase lottery. Bound the
        // sampled drift by that oscillation amplitude — what the test
        // guards against is *secular* drift, which would be far larger.
        let drift =
            (rows.last().unwrap().e_total - rows[0].e_total).abs() / sim.system.atoms.nlocal as f64;
        assert!(drift < 1e-3, "drift {drift}");
    }

    #[test]
    fn suffix_kk_uses_threads_without_device() {
        let mut lmp = Lammps::new(StyleRegistry::core());
        let script = MELT.replace("pair_style lj/cut 2.5", "suffix kk\npair_style lj/cut 2.5");
        lmp.run_script(&script).unwrap();
        assert_eq!(lmp.sim.as_ref().unwrap().pair.name(), "lj/cut/kk");
    }

    #[test]
    fn package_kokkos_device_runs_on_simulated_gpu() {
        let mut lmp = Lammps::new(StyleRegistry::core());
        let script = MELT.replace(
            "pair_style lj/cut 2.5",
            "package kokkos device h100\nsuffix kk\npair_style lj/cut 2.5",
        );
        lmp.run_script(&script).unwrap();
        let sim = lmp.sim.as_ref().unwrap();
        assert!(sim.system.space.is_device());
        assert!(sim.system.space.device_ctx().unwrap().log.len() > 0);
    }

    #[test]
    fn second_run_continues() {
        let mut lmp = Lammps::new(StyleRegistry::core());
        lmp.run_script(MELT).unwrap();
        lmp.command("run 50").unwrap();
        assert_eq!(lmp.sim.as_ref().unwrap().step, 150);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut lmp = Lammps::new(StyleRegistry::core());
        let err = lmp.run_script("units lj\nbogus_command 1 2").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("bogus_command"));
    }

    #[test]
    fn langevin_fix_from_script() {
        let mut lmp = Lammps::new(StyleRegistry::core());
        let script = MELT.replace(
            "fix 1 all nve",
            "fix 1 all nve\nfix 2 all langevin 0.7 0.7 0.1 12345",
        );
        lmp.run_script(&script).unwrap();
        assert_eq!(lmp.sim.as_ref().unwrap().fixes.len(), 2);
    }
}
