//! Smooth switching functions shared by pair styles.

/// Cubic switching function: 1 below `on`, 0 above `off`, C¹ smooth.
/// Returns `(s, ds/dr)`.
pub fn cubic_switch(r: f64, on: f64, off: f64) -> (f64, f64) {
    if r <= on {
        (1.0, 0.0)
    } else if r >= off {
        (0.0, 0.0)
    } else {
        let t = (r - on) / (off - on);
        let s = 1.0 - t * t * (3.0 - 2.0 * t);
        let ds = -6.0 * t * (1.0 - t) / (off - on);
        (s, ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_midpoint() {
        assert_eq!(cubic_switch(0.5, 1.0, 2.0), (1.0, 0.0));
        assert_eq!(cubic_switch(2.5, 1.0, 2.0), (0.0, 0.0));
        assert!((cubic_switch(1.5, 1.0, 2.0).0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derivative_matches_fd() {
        for &r in &[1.1f64, 1.4, 1.8] {
            let h = 1e-7;
            let fd =
                (cubic_switch(r + h, 1.0, 2.0).0 - cubic_switch(r - h, 1.0, 2.0).0) / (2.0 * h);
            assert!((cubic_switch(r, 1.0, 2.0).1 - fd).abs() < 1e-6);
        }
    }
}
