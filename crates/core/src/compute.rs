//! Diagnostic computations ("compute" styles, §2.2): temperature,
//! kinetic energy, and pressure from the pair virial.

use crate::atom::AtomData;
use crate::domain::Domain;
use crate::units::Units;

/// Total kinetic energy `Σ ½ m v²` of owned atoms.
pub fn kinetic_energy(atoms: &AtomData, units: &Units) -> f64 {
    let vh = atoms.v.h_view();
    let typ = atoms.typ.h_view();
    let mut ke2 = 0.0;
    for i in 0..atoms.nlocal {
        let m = atoms.mass[typ.at([i]) as usize];
        let v = [vh.at([i, 0]), vh.at([i, 1]), vh.at([i, 2])];
        ke2 += m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
    }
    0.5 * units.mvv2e * ke2
}

/// Instantaneous temperature with 3N−3 degrees of freedom (matching the
/// LAMMPS `compute temp` default of removed center-of-mass motion).
pub fn temperature(atoms: &AtomData, units: &Units) -> f64 {
    let n = atoms.nlocal;
    if n < 2 {
        return 0.0;
    }
    let dof = (3 * n - 3) as f64;
    2.0 * kinetic_energy(atoms, units) / (dof * units.boltz)
}

/// Pressure from the virial theorem:
/// `P = (N k_B T + W/3) / V` with `W = Σ r·f` the pair virial.
pub fn pressure(atoms: &AtomData, units: &Units, domain: &Domain, virial: f64) -> f64 {
    let n = atoms.nlocal as f64;
    let t = temperature(atoms, units);
    (n * units.boltz * t + virial / 3.0) / domain.volume()
}

/// Full pressure tensor (Voigt `xx, yy, zz, xy, xz, yz`) from the
/// kinetic term plus the pair virial tensor.
pub fn pressure_tensor(
    atoms: &AtomData,
    units: &Units,
    domain: &Domain,
    virial_tensor: [f64; 6],
) -> [f64; 6] {
    let vh = atoms.v.h_view();
    let typ = atoms.typ.h_view();
    let mut kin = [0.0f64; 6];
    for i in 0..atoms.nlocal {
        let m = atoms.mass[typ.at([i]) as usize] * units.mvv2e;
        let v = [vh.at([i, 0]), vh.at([i, 1]), vh.at([i, 2])];
        kin[0] += m * v[0] * v[0];
        kin[1] += m * v[1] * v[1];
        kin[2] += m * v[2] * v[2];
        kin[3] += m * v[0] * v[1];
        kin[4] += m * v[0] * v[2];
        kin[5] += m * v[1] * v[2];
    }
    let inv_v = 1.0 / domain.volume();
    let mut p = [0.0f64; 6];
    for k in 0..6 {
        p[k] = (kin[k] + virial_tensor[k]) * inv_v;
    }
    p
}

/// Radial distribution function g(r): histogram of pair distances
/// (minimum image, O(N²) — an analysis observable, not a force kernel).
/// Returns `(bin_centers, g)`.
pub fn rdf(atoms: &AtomData, domain: &Domain, r_max: f64, nbins: usize) -> (Vec<f64>, Vec<f64>) {
    let n = atoms.nlocal;
    let dr = r_max / nbins as f64;
    let mut hist = vec![0u64; nbins];
    for i in 0..n {
        for j in (i + 1)..n {
            let rsq = domain.min_image_dsq(&atoms.pos(i), &atoms.pos(j));
            if rsq < r_max * r_max {
                hist[(rsq.sqrt() / dr) as usize] += 1;
            }
        }
    }
    let rho = n as f64 / domain.volume();
    let centers: Vec<f64> = (0..nbins).map(|b| (b as f64 + 0.5) * dr).collect();
    let g = hist
        .iter()
        .zip(&centers)
        .map(|(&h, &r)| {
            let shell = 4.0 * std::f64::consts::PI * r * r * dr;
            // Pairs counted once: normalize by N/2 ideal-gas pairs.
            (2.0 * h as f64) / (n as f64 * rho * shell)
        })
        .collect();
    (centers, g)
}

/// Mean-squared displacement tracker (`compute msd`): snapshots the
/// unwrapped positions at construction and reports
/// `⟨|r(t) − r(0)|²⟩` using the periodic image flags.
#[derive(Debug)]
pub struct ComputeMsd {
    x0: Vec<[f64; 3]>,
}

impl ComputeMsd {
    pub fn new(atoms: &AtomData, domain: &Domain) -> Self {
        ComputeMsd {
            x0: (0..atoms.nlocal)
                .map(|i| atoms.unwrapped_pos(i, domain))
                .collect(),
        }
    }

    pub fn value(&self, atoms: &AtomData, domain: &Domain) -> f64 {
        let n = self.x0.len().min(atoms.nlocal);
        if n == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, x0) in self.x0.iter().enumerate().take(n) {
            let p = atoms.unwrapped_pos(i, domain);
            for k in 0..3 {
                let d = p[k] - x0[k];
                acc += d * d;
            }
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinetic_energy_simple() {
        let mut a = AtomData::from_positions(&[[0.0; 3], [1.0; 3]]);
        let vh = a.v.h_view_mut();
        vh.set([0, 0], 2.0);
        vh.set([1, 1], -2.0);
        let u = Units::lj();
        // ½·1·4 + ½·1·4 = 4
        assert_eq!(kinetic_energy(&a, &u), 4.0);
    }

    #[test]
    fn temperature_of_two_atoms() {
        let mut a = AtomData::from_positions(&[[0.0; 3], [1.0; 3]]);
        a.v.h_view_mut().set([0, 0], 1.0);
        a.v.h_view_mut().set([1, 0], -1.0);
        let u = Units::lj();
        // KE = 1.0, dof = 3, T = 2*1/3.
        assert!((temperature(&a, &u) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_gas_pressure() {
        let mut a = AtomData::from_positions(&[[0.0; 3], [1.0; 3], [2.0; 3]]);
        for i in 0..3 {
            a.v.h_view_mut().set([i, 0], 1.0);
        }
        let u = Units::lj();
        let d = Domain::cubic(10.0);
        let p = pressure(&a, &u, &d, 0.0);
        let expect = 3.0 * u.boltz * temperature(&a, &u) / 1000.0;
        assert!((p - expect).abs() < 1e-15);
    }

    #[test]
    fn rdf_of_perfect_fcc_peaks_at_first_shell() {
        use crate::lattice::{Lattice, LatticeKind};
        let lat = Lattice::new(LatticeKind::Fcc, 1.0);
        let atoms = AtomData::from_positions(&lat.positions(4, 4, 4));
        let domain = lat.domain(4, 4, 4);
        let (r, g) = rdf(&atoms, &domain, 1.6, 160);
        // First shell at a/sqrt(2) ≈ 0.707.
        let (imax, _) = g
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((r[imax] - 0.707).abs() < 0.02, "peak at {}", r[imax]);
        // No pairs below the first shell.
        assert!(g[..60].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn msd_tracks_ballistic_motion_through_pbc() {
        let mut atoms = AtomData::from_positions(&[[9.5, 5.0, 5.0]]);
        let domain = Domain::cubic(10.0);
        let msd = ComputeMsd::new(&atoms, &domain);
        // Move 2.0 in x, wrapping through the boundary.
        atoms.x.h_view_mut().set([0, 0], 11.5);
        atoms.wrap_positions(&domain);
        assert!(domain.contains(&atoms.pos(0)));
        let v = msd.value(&atoms, &domain);
        assert!((v - 4.0).abs() < 1e-12, "msd = {v}");
    }

    #[test]
    fn pressure_tensor_trace_matches_scalar_pressure() {
        use crate::comm::build_ghosts;
        use crate::lattice::{create_velocities, Lattice, LatticeKind};
        use crate::neighbor::{NeighborList, NeighborSettings};
        use crate::pair::lj::LjCut;
        use crate::pair::{PairKokkos, PairStyle};
        use crate::sim::System;
        use lkk_kokkos::Space;
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let mut atoms = AtomData::from_positions(&lat.positions(4, 4, 4));
        create_velocities(&mut atoms, &Units::lj(), 1.44, 4242);
        let space = Space::Threads;
        let mut system = System::new(atoms, lat.domain(4, 4, 4), space.clone());
        let mut pair = PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &space);
        let settings = NeighborSettings::new(2.5, 0.3, pair.wants_half_list());
        system.ghosts = build_ghosts(&mut system.atoms, &system.domain, settings.cutneigh());
        let list = NeighborList::build(&system.atoms, &system.domain, &settings, &space);
        let res = pair.compute(&mut system, &list, true);
        // Tensor trace reproduces the scalar virial.
        let trace = res.virial_tensor[0] + res.virial_tensor[1] + res.virial_tensor[2];
        assert!((trace - res.virial).abs() < 1e-9 * res.virial.abs().max(1.0));
        // Pressure tensor: trace/3 equals the scalar pressure, and the
        // cubic crystal is (statistically) isotropic with no shear.
        system.atoms.sync(&Space::Serial, crate::atom::Mask::V);
        let p6 = pressure_tensor(
            &system.atoms,
            &system.units,
            &system.domain,
            res.virial_tensor,
        );
        let p = pressure(&system.atoms, &system.units, &system.domain, res.virial);
        // The scalar `pressure` uses the 3N−3 dof temperature while the
        // tensor's kinetic term sums all 3N velocity components; they
        // agree up to that O(1/N) convention difference.
        assert!(
            (((p6[0] + p6[1] + p6[2]) / 3.0 - p) / p.abs().max(1e-12)).abs() < 1.5 / 255.0,
            "trace/3 {} vs p {p}",
            (p6[0] + p6[1] + p6[2]) / 3.0
        );
        for k in 3..6 {
            assert!(
                p6[k].abs() < 0.05 * p.abs().max(1.0),
                "shear {k}: {}",
                p6[k]
            );
        }
    }
}
