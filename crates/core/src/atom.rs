//! Struct-of-arrays atom storage on `DualView`s.
//!
//! The per-field [`Mask`] bits reproduce the KOKKOS package's datamask
//! flags (§3.2): every style declares which fields it reads/modifies,
//! and calls [`AtomData::sync`] / [`AtomData::modified`] with that mask;
//! transfers only happen when the field was last written in the other
//! memory space.
//!
//! Atom tags are 64-bit (`i64`) from the start — the "bigint"
//! exascale-preparedness measure of Appendix B, where global atom counts
//! can exceed 2³¹.

use crate::domain::Domain;
use lkk_kokkos::{DualView, Space};

/// Field masks for sync/modify bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask(pub u32);

impl Mask {
    pub const X: Mask = Mask(1);
    pub const V: Mask = Mask(2);
    pub const F: Mask = Mask(4);
    pub const TYPE: Mask = Mask(8);
    pub const Q: Mask = Mask(16);
    pub const TAG: Mask = Mask(32);
    pub const ALL: Mask = Mask(63);

    #[inline]
    pub fn contains(self, other: Mask) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for Mask {
    type Output = Mask;
    fn bitor(self, rhs: Mask) -> Mask {
        Mask(self.0 | rhs.0)
    }
}

/// The full per-atom state that travels when an atom changes owner:
/// identity, pair-style inputs, and kinematics. Forces and style
/// scratch are recomputed after migration and are not carried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomRecord {
    pub tag: i64,
    pub typ: i32,
    pub q: f64,
    pub x: [f64; 3],
    pub v: [f64; 3],
    pub image: [i32; 3],
}

/// All per-atom data. Rows `0..nlocal` are owned atoms; rows
/// `nlocal..nlocal+nghost` are ghost images created by [`crate::comm`].
#[derive(Debug)]
pub struct AtomData {
    /// Positions, `[nall, 3]`.
    pub x: DualView<f64, 2>,
    /// Velocities, `[nall, 3]` (ghost rows unused).
    pub v: DualView<f64, 2>,
    /// Forces, `[nall, 3]`.
    pub f: DualView<f64, 2>,
    /// 0-based atom types, `[nall]`.
    pub typ: DualView<i32, 1>,
    /// Charges, `[nall]`.
    pub q: DualView<f64, 1>,
    /// Global atom ids (64-bit per Appendix B), `[nall]`.
    pub tag: DualView<i64, 1>,
    /// Per-type masses.
    pub mass: Vec<f64>,
    /// Periodic image flags of owned atoms (how many times each has
    /// wrapped through each face) — what LAMMPS stores to reconstruct
    /// unwrapped trajectories for diffusion observables.
    pub image: Vec<[i32; 3]>,
    pub nlocal: usize,
    pub nghost: usize,
}

impl AtomData {
    /// Create from owned-atom positions; one atom type, unit mass,
    /// velocities zero, tags sequential.
    pub fn from_positions(positions: &[[f64; 3]]) -> Self {
        let n = positions.len();
        let mut x = DualView::new("x", [n, 3]);
        {
            let xh = x.h_view_mut();
            for (i, p) in positions.iter().enumerate() {
                for (k, &pk) in p.iter().enumerate() {
                    xh.set([i, k], pk);
                }
            }
        }
        let mut tag = DualView::new("tag", [n]);
        {
            let th = tag.h_view_mut();
            for i in 0..n {
                th.set([i], i as i64 + 1);
            }
        }
        AtomData {
            x,
            v: DualView::new("v", [n, 3]),
            f: DualView::new("f", [n, 3]),
            typ: DualView::new("type", [n]),
            q: DualView::new("q", [n]),
            tag,
            mass: vec![1.0],
            image: vec![[0; 3]; n],
            nlocal: n,
            nghost: 0,
        }
    }

    /// Total rows including ghosts.
    pub fn nall(&self) -> usize {
        self.nlocal + self.nghost
    }

    /// Resize all fields to `nall` rows, preserving the first
    /// `preserve` rows. Fields last modified on the device are synced
    /// home first, so no data is lost; the result is host-modified.
    pub fn resize_all(&mut self, nall: usize, preserve: usize) {
        self.x.sync_host();
        self.v.sync_host();
        self.f.sync_host();
        self.typ.sync_host();
        self.q.sync_host();
        self.tag.sync_host();
        fn keep2(dv: &mut DualView<f64, 2>, nall: usize, preserve: usize) {
            let old: Vec<f64> = (0..preserve.min(dv.dims()[0]))
                .flat_map(|i| (0..3).map(move |k| (i, k)))
                .map(|(i, k)| dv.h_view().at([i, k]))
                .collect();
            dv.realloc([nall, 3]);
            let h = dv.h_view_mut();
            for (idx, val) in old.into_iter().enumerate() {
                h.set([idx / 3, idx % 3], val);
            }
        }
        fn keep1<T: Copy + Default>(dv: &mut DualView<T, 1>, nall: usize, preserve: usize) {
            let old: Vec<T> = (0..preserve.min(dv.dims()[0]))
                .map(|i| dv.h_view().at([i]))
                .collect();
            dv.realloc([nall]);
            let h = dv.h_view_mut();
            for (i, val) in old.into_iter().enumerate() {
                h.set([i], val);
            }
        }
        keep2(&mut self.x, nall, preserve);
        keep2(&mut self.v, nall, preserve);
        keep2(&mut self.f, nall, preserve);
        keep1(&mut self.typ, nall, preserve);
        keep1(&mut self.q, nall, preserve);
        keep1(&mut self.tag, nall, preserve);
    }

    /// Sync the fields in `mask` toward the memory space of `space`
    /// (§3.2: "simply calling sync ... will only incur the overhead of
    /// actual memory transfer if the data was last modified in the other
    /// memory space").
    pub fn sync(&mut self, space: &Space, mask: Mask) {
        if mask.contains(Mask::X) {
            self.x.sync_to(space);
        }
        if mask.contains(Mask::V) {
            self.v.sync_to(space);
        }
        if mask.contains(Mask::F) {
            self.f.sync_to(space);
        }
        if mask.contains(Mask::TYPE) {
            self.typ.sync_to(space);
        }
        if mask.contains(Mask::Q) {
            self.q.sync_to(space);
        }
        if mask.contains(Mask::TAG) {
            self.tag.sync_to(space);
        }
    }

    /// Mark the fields in `mask` as modified in the memory space of
    /// `space`.
    pub fn modified(&mut self, space: &Space, mask: Mask) {
        let dev = space.is_device();
        macro_rules! m {
            ($f:expr) => {
                if dev {
                    $f.modify_device()
                } else {
                    $f.modify_host()
                }
            };
        }
        if mask.contains(Mask::X) {
            m!(self.x);
        }
        if mask.contains(Mask::V) {
            m!(self.v);
        }
        if mask.contains(Mask::F) {
            m!(self.f);
        }
        if mask.contains(Mask::TYPE) {
            m!(self.typ);
        }
        if mask.contains(Mask::Q) {
            m!(self.q);
        }
        if mask.contains(Mask::TAG) {
            m!(self.tag);
        }
    }

    /// Snapshot owned atom `i` as a self-contained record (the payload
    /// of a migration message).
    pub fn record(&self, i: usize) -> AtomRecord {
        let x = self.x.h_view();
        let v = self.v.h_view();
        AtomRecord {
            tag: self.tag.h_view().at([i]),
            typ: self.typ.h_view().at([i]),
            q: self.q.h_view().at([i]),
            x: [x.at([i, 0]), x.at([i, 1]), x.at([i, 2])],
            v: [v.at([i, 0]), v.at([i, 1]), v.at([i, 2])],
            image: self.image[i],
        }
    }

    /// Build atom storage from records (e.g. one rank's share of a
    /// decomposed system). `masses` is the per-type mass table, which is
    /// global and therefore not part of the records.
    pub fn from_records(records: &[AtomRecord], masses: &[f64]) -> Self {
        let mut atoms = AtomData::from_positions(&records.iter().map(|r| r.x).collect::<Vec<_>>());
        atoms.mass = masses.to_vec();
        for (i, r) in records.iter().enumerate() {
            atoms.tag.h_view_mut().set([i], r.tag);
            atoms.typ.h_view_mut().set([i], r.typ);
            atoms.q.h_view_mut().set([i], r.q);
            for k in 0..3 {
                atoms.v.h_view_mut().set([i, k], r.v[k]);
            }
            atoms.image[i] = r.image;
        }
        atoms
    }

    /// Host position of atom `i` as an array.
    #[inline]
    pub fn pos(&self, i: usize) -> [f64; 3] {
        let x = self.x.h_view();
        [x.at([i, 0]), x.at([i, 1]), x.at([i, 2])]
    }

    /// Wrap all owned positions into the box (host side), updating the
    /// periodic image flags.
    pub fn wrap_positions(&mut self, domain: &Domain) {
        let n = self.nlocal;
        let l = domain.lengths();
        let xh = self.x.h_view_mut();
        for i in 0..n {
            let mut p = [xh.at([i, 0]), xh.at([i, 1]), xh.at([i, 2])];
            let before = p;
            domain.wrap(&mut p);
            for k in 0..3 {
                // Count whole-box shifts applied by the wrap.
                self.image[i][k] += ((before[k] - p[k]) / l[k]).round() as i32;
                xh.set([i, k], p[k]);
            }
        }
    }

    /// Unwrapped position of owned atom `i` (for diffusion observables).
    pub fn unwrapped_pos(&self, i: usize, domain: &Domain) -> [f64; 3] {
        let p = self.pos(i);
        let l = domain.lengths();
        [
            p[0] + self.image[i][0] as f64 * l[0],
            p[1] + self.image[i][1] as f64 * l[1],
            p[2] + self.image[i][2] as f64 * l[2],
        ]
    }

    /// Zero forces over all rows (host side).
    pub fn zero_forces(&mut self) {
        self.f.h_view_mut().fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults() {
        let a = AtomData::from_positions(&[[0.0, 0.0, 0.0], [1.0, 2.0, 3.0]]);
        assert_eq!(a.nlocal, 2);
        assert_eq!(a.nall(), 2);
        assert_eq!(a.pos(1), [1.0, 2.0, 3.0]);
        assert_eq!(a.tag.h_view().at([0]), 1);
        assert_eq!(a.tag.h_view().at([1]), 2);
        assert_eq!(a.mass, vec![1.0]);
    }

    #[test]
    fn mask_ops() {
        let m = Mask::X | Mask::F;
        assert!(m.contains(Mask::X));
        assert!(m.contains(Mask::F));
        assert!(!m.contains(Mask::V));
        assert!(Mask::ALL.contains(Mask::TAG));
    }

    #[test]
    fn resize_preserves_prefix() {
        let mut a = AtomData::from_positions(&[[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]]);
        a.resize_all(5, 2);
        a.nghost = 3;
        assert_eq!(a.nall(), 5);
        assert_eq!(a.pos(0), [1.0, 1.0, 1.0]);
        assert_eq!(a.pos(1), [2.0, 2.0, 2.0]);
        assert_eq!(a.pos(4), [0.0, 0.0, 0.0]);
        assert_eq!(a.tag.h_view().at([1]), 2);
    }

    #[test]
    fn wrap_positions_moves_into_box() {
        let mut a = AtomData::from_positions(&[[11.0, -1.0, 5.0]]);
        a.wrap_positions(&Domain::cubic(10.0));
        let p = a.pos(0);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((p[1] - 9.0).abs() < 1e-12);
        assert_eq!(p[2], 5.0);
    }

    #[test]
    fn sync_round_trip_through_device() {
        let dev = Space::device(lkk_gpusim::GpuArch::h100());
        let mut a = AtomData::from_positions(&[[1.0, 2.0, 3.0]]);
        a.sync(&dev, Mask::X);
        assert_eq!(a.x.d_view().at([0, 2]), 3.0);
        a.x.d_view_mut().set([0, 0], 9.0);
        a.sync(&Space::Threads, Mask::X);
        assert_eq!(a.pos(0), [9.0, 2.0, 3.0]);
    }
}
