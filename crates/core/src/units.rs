//! Unit systems.
//!
//! LAMMPS supports several unit systems selected by the `units` command;
//! we provide the two used by the paper's benchmarks: reduced
//! Lennard-Jones units (`lj`, where ε = σ = m = k_B = 1) and `metal`
//! units (eV, Å, ps), which SNAP and our reduced ReaxFF use.

/// Conversion constants of a unit system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Units {
    /// Boltzmann constant in these units.
    pub boltz: f64,
    /// Conversion from m·v² to energy.
    pub mvv2e: f64,
    /// Timestep implied by `timestep` command default.
    pub default_dt: f64,
    /// Name, for thermo headers.
    pub name: &'static str,
}

impl Units {
    /// Reduced Lennard-Jones units: everything is 1.
    pub fn lj() -> Units {
        Units {
            boltz: 1.0,
            mvv2e: 1.0,
            default_dt: 0.005,
            name: "lj",
        }
    }

    /// Metal units: energy eV, distance Å, time ps, mass g/mol.
    pub fn metal() -> Units {
        Units {
            boltz: 8.617_333_262e-5,
            mvv2e: 1.036_426_9e-4,
            default_dt: 0.001,
            name: "metal",
        }
    }

    pub fn from_name(name: &str) -> Option<Units> {
        match name {
            "lj" => Some(Units::lj()),
            "metal" => Some(Units::metal()),
            _ => None,
        }
    }
}

impl Default for Units {
    fn default() -> Self {
        Units::lj()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert_eq!(Units::from_name("lj").unwrap(), Units::lj());
        assert_eq!(Units::from_name("metal").unwrap().name, "metal");
        assert!(Units::from_name("si").is_none());
    }

    #[test]
    fn lj_is_reduced() {
        let u = Units::lj();
        assert_eq!(u.boltz, 1.0);
        assert_eq!(u.mvv2e, 1.0);
    }
}
