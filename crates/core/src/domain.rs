//! Orthogonal periodic simulation boxes.

/// An orthogonal simulation box with periodic boundaries in all three
/// directions (the only boundary style our benchmarks need).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    pub lo: [f64; 3],
    pub hi: [f64; 3],
}

impl Domain {
    pub fn new(lo: [f64; 3], hi: [f64; 3]) -> Self {
        assert!(
            (0..3).all(|k| hi[k] > lo[k]),
            "degenerate box: lo {lo:?} hi {hi:?}"
        );
        Domain { lo, hi }
    }

    /// A cubic box `[0, l)^3`.
    pub fn cubic(l: f64) -> Self {
        Domain::new([0.0; 3], [l; 3])
    }

    #[inline]
    pub fn lengths(&self) -> [f64; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }

    pub fn volume(&self) -> f64 {
        let l = self.lengths();
        l[0] * l[1] * l[2]
    }

    /// Wrap a position into the primary cell.
    #[inline]
    pub fn wrap(&self, x: &mut [f64; 3]) {
        let l = self.lengths();
        for k in 0..3 {
            // rem_euclid-style wrap robust to positions many cells away.
            let mut t = (x[k] - self.lo[k]) % l[k];
            if t < 0.0 {
                t += l[k];
            }
            x[k] = self.lo[k] + t;
            // Guard the `t == l[k]` rounding edge.
            if x[k] >= self.hi[k] {
                x[k] = self.lo[k];
            }
        }
    }

    /// Is a position inside the primary cell?
    #[inline]
    pub fn contains(&self, x: &[f64; 3]) -> bool {
        (0..3).all(|k| x[k] >= self.lo[k] && x[k] < self.hi[k])
    }

    /// Minimum-image displacement `a - b`.
    #[inline]
    pub fn min_image(&self, a: &[f64; 3], b: &[f64; 3]) -> [f64; 3] {
        let l = self.lengths();
        let mut d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
        for k in 0..3 {
            if d[k] > 0.5 * l[k] {
                d[k] -= l[k];
            } else if d[k] < -0.5 * l[k] {
                d[k] += l[k];
            }
        }
        d
    }

    /// Minimum-image squared distance.
    #[inline]
    pub fn min_image_dsq(&self, a: &[f64; 3], b: &[f64; 3]) -> f64 {
        let d = self.min_image(a, b);
        d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_into_box() {
        let d = Domain::cubic(10.0);
        let mut x = [12.5, -0.5, 9.999];
        d.wrap(&mut x);
        assert!((x[0] - 2.5).abs() < 1e-12);
        assert!((x[1] - 9.5).abs() < 1e-12);
        assert!(d.contains(&x));
        // Far outside.
        let mut y = [105.0, -33.0, 0.0];
        d.wrap(&mut y);
        assert!(d.contains(&y));
        assert!((y[0] - 5.0).abs() < 1e-9);
        assert!((y[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_is_idempotent() {
        let d = Domain::new([-2.0, 0.0, 1.0], [2.0, 5.0, 4.0]);
        let mut x = [3.7, -1.2, 100.0];
        d.wrap(&mut x);
        let once = x;
        d.wrap(&mut x);
        assert_eq!(once, x);
    }

    #[test]
    fn min_image_short_way_around() {
        let d = Domain::cubic(10.0);
        let a = [9.5, 0.0, 0.0];
        let b = [0.5, 0.0, 0.0];
        let disp = d.min_image(&a, &b);
        assert!((disp[0] - (-1.0)).abs() < 1e-12);
        assert_eq!(d.min_image_dsq(&a, &b), 1.0);
    }

    #[test]
    fn volume_and_lengths() {
        let d = Domain::new([0.0, 0.0, 0.0], [2.0, 3.0, 4.0]);
        assert_eq!(d.lengths(), [2.0, 3.0, 4.0]);
        assert_eq!(d.volume(), 24.0);
    }

    #[test]
    #[should_panic]
    fn degenerate_box_rejected() {
        let _ = Domain::new([0.0; 3], [1.0, 0.0, 1.0]);
    }
}
