//! Simulated-MPI brick communication: ranks as threads, typed messages
//! over per-edge channels.
//!
//! [`BrickComm`] is the multi-rank [`Comm`] implementation behind the
//! brick domain decomposition of [`crate::decomp::BrickDecomp`]. Each
//! rank runs on its own OS thread and owns one brick of the global box;
//! exchanges move through unbounded `std::sync::mpsc` channels, one
//! data + one buffer-recycle channel per directed rank pair. Because
//! sends never block and every phase is bulk-synchronous (all ranks
//! send to all peers, then receive in ascending rank order), the
//! exchange sequence is deadlock-free without barriers or any global
//! lock.
//!
//! The halo construction is O(surface), not O(N): owned atoms are
//! binned over the sub-domain at `cutghost` granularity and only the
//! outermost bin shell is scanned against the 26 face/edge/corner
//! directions of the brick (each with its periodic wrap shift). Border
//! messages carry the shift once; per-step forward messages then carry
//! raw owner position bits, and the receiver adds its stored shift —
//! the exact arithmetic of the single-rank ghost path, so a decomposed
//! run reproduces the single-rank trajectory to float accumulation
//! order (see `tests/rank_equivalence.rs`).
//!
//! Message buffers live in a per-rank [`BufPool`]; receivers return
//! drained buffers through the recycle channel, so steady-state
//! exchanges allocate nothing (`Comm::grow_count` asserts this — the
//! same invariant the neighbor-list and scatter pools keep, see
//! `docs/performance.md`).
//!
//! Every message travels inside a small envelope — `[tag, seq, crc]`
//! followed by the payload words. The per-edge sequence number is
//! deterministic (every phase sends exactly one message per directed
//! edge, empty or not), so duplicated or reordered deliveries are
//! detected and discarded by `seq` alone, and the CRC32 over the
//! payload (computed only when a fault plan is installed) catches
//! corruption. Lost or corrupted envelopes are recovered by NACK +
//! retransmit over a per-edge control channel; receives poll with
//! bounded exponential backoff instead of blocking forever, so a dead
//! edge or vanished peer surfaces as a structured
//! [`CommError`](crate::comm::CommError) rather than a deadlock. The
//! whole fault model and the determinism contract live in
//! `docs/robustness.md`.

use crate::atom::{AtomData, AtomRecord, Mask};
use crate::comm::balance::{self, BalancePolicy};
use crate::comm::fault::{crc32_words, flow_id, CommError, FaultKind, FaultPlan, FaultStats};
use crate::comm::{Comm, CommSpec, CommStats, FaultConfig};
use crate::compute;
use crate::decomp::BrickDecomp;
use crate::domain::Domain;
use crate::neighbor::Bins;
use crate::sim::{Simulation, System, ThermoRow, Timings};
use crate::units::Units;
use lkk_kokkos::{profile, Space};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::{Duration, Instant};

// Phase tags (word 0 of every message) catch sequence mismatches in
// debug builds: a desynced collective shows up as a tag assert, not as
// silently corrupt positions.
const TAG_MIGRATE: u64 = 1;
const TAG_BORDER: u64 = 2;
const TAG_FORWARD: u64 = 3;
const TAG_REVERSE: u64 = 4;
const TAG_SCALAR: u64 = 5;
const TAG_REDUCE: u64 = 6;
/// Shutdown handshake (fault mode only): exempt from injection, like a
/// finalize barrier riding a reliable control plane.
const TAG_QUIESCE: u64 = 7;
/// Load-balance census exchange (only when a [`BalancePolicy`] is
/// installed; a balance-off run never emits this tag, keeping its
/// per-edge sequence numbering identical to the pre-balancer layer).
const TAG_BALANCE: u64 = 8;

/// Envelope words preceding the payload: `[tag, seq, crc]`.
const HDR: usize = 3;

/// Words per atom in a migration message (tag, type, q, x, v, image).
const MIGRATE_WORDS: usize = 12;
/// Words per atom in a border message (tag, type, q, x, shift).
const BORDER_WORDS: usize = 9;

/// Human-readable phase name for [`CommError`] diagnostics.
fn tag_name(tag: u64) -> &'static str {
    match tag {
        TAG_MIGRATE => "migrate",
        TAG_BORDER => "border",
        TAG_FORWARD => "forward",
        TAG_REVERSE => "reverse",
        TAG_SCALAR => "scalar",
        TAG_REDUCE => "reduce",
        TAG_QUIESCE => "quiesce",
        TAG_BALANCE => "balance",
        _ => "unknown",
    }
}

/// The channel endpoints one rank holds toward one peer.
struct Link {
    /// Data to the peer.
    tx: Sender<Vec<u64>>,
    /// Data from the peer.
    rx: Receiver<Vec<u64>>,
    /// Returns the peer's drained buffers to its pool.
    recycle_tx: Sender<Vec<u64>>,
    /// This rank's buffers coming back from the peer.
    recycle_rx: Receiver<Vec<u64>>,
    /// Retransmit requests (NACKed sequence numbers) to the peer.
    ctrl_tx: Sender<u64>,
    /// Retransmit requests from the peer, polled between receives.
    ctrl_rx: Receiver<u64>,
    /// Buffers sent to the peer and not yet reclaimed. Reclaim waits
    /// for exactly this many, which makes the pool's contents — and
    /// therefore its `grow_count` — independent of thread timing.
    owed: std::cell::Cell<usize>,
}

/// Persistent send-buffer pool. Buffers drain back through the recycle
/// channels; `grow_count` ticks only when a fresh allocation (or an
/// in-place capacity growth) was unavoidable, so steady state holds it
/// constant.
struct BufPool {
    free: Vec<Vec<u64>>,
    grow_count: u64,
}

impl BufPool {
    fn new() -> BufPool {
        BufPool {
            free: Vec::new(),
            grow_count: 0,
        }
    }

    /// An empty buffer with room for `need` words: the tightest-fitting
    /// free buffer, or a fresh allocation when none fits. Capacities
    /// are rounded up to a power of two (min 1024 words) so small
    /// fluctuations in exchange sizes land in the same size class, and
    /// best-fit pairing keeps large buffers available for large
    /// requests instead of churning.
    fn acquire(&mut self, need: usize) -> Vec<u64> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= need
                && best.is_none_or(|j: usize| buf.capacity() < self.free[j].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf
            }
            None => {
                // 2x headroom: exchange sizes fluctuate a few percent
                // step to step, and a fresh class must absorb that
                // without another growth (the steady-state assert).
                self.grow_count += 1;
                if profile::has_subscribers() {
                    profile::note_instant("pool_grow", need as f64);
                }
                Vec::with_capacity((need * 2).max(1024).next_power_of_two())
            }
        }
    }
}

/// Multi-rank brick [`Comm`]: one instance per rank, created together
/// by [`BrickComm::create_all`] so the channel mesh is fully connected.
pub struct BrickComm {
    decomp: BrickDecomp,
    rank: usize,
    /// This rank's grid coordinates.
    coords: [usize; 3],
    /// This rank's brick of the global box.
    sub: Domain,
    /// `links[p]` is `Some` for every peer `p != rank`.
    links: Vec<Option<Link>>,
    pool: BufPool,
    /// Per peer: owned rows sent as ghosts, in border-pack order.
    send_plan: Vec<Vec<u32>>,
    /// Per peer: periodic shift of each planned ghost (sent once in the
    /// border message; per-step forwards carry raw owner bits).
    send_shift: Vec<Vec<[f64; 3]>>,
    /// Per peer: ghost rows received from it in the last border build.
    recv_count: Vec<usize>,
    /// Periodic shift of each remote ghost row, segment-concatenated in
    /// ascending peer order; applied on every forward.
    recv_shift: Vec<[f64; 3]>,
    /// First remote ghost row (`nlocal + self-image count`).
    remote_base: usize,
    /// Sub-domain bins for the O(surface) boundary-shell halo search.
    bins: Bins,
    boundary: Vec<u32>,
    /// Migration scratch: surviving + immigrating atom records.
    records: Vec<AtomRecord>,
    /// Migration scratch: destination rank per owned atom.
    dest: Vec<usize>,
    /// Received border buffers pending unpack (held so the ghost count
    /// is known before the one resize).
    inbox: Vec<(usize, Vec<u64>)>,
    /// Packed outbound buffers pending send (per exchange phase; lets
    /// the pack and send sub-phases trace as distinct spans without a
    /// per-call allocation).
    outbox: Vec<(usize, Vec<u64>)>,
    stats: CommStats,
    halo_seconds: f64,
    migrate_seconds: f64,
    /// Next sequence number to send per peer (lockstep with the peer's
    /// `recv_seq` for this edge; see the envelope docs above).
    send_seq: Vec<u64>,
    /// Next sequence number expected per peer.
    recv_seq: Vec<u64>,
    /// Clean copy of the last envelope sent per peer (fault mode only);
    /// a reorder fault replays it ahead of the current envelope.
    last_sent: Vec<Vec<u64>>,
    /// Pre-packed envelopes awaiting a possible NACK: `(seq, envelope)`.
    /// A sender can lead a stuck receiver by at most one phase (it
    /// cannot finish its own next receive round without the stuck
    /// peer's send), so at most two entries per peer ever coexist.
    pending_retx: Vec<Vec<(u64, Vec<u64>)>>,
    /// Envelopes received ahead of their turn, parked per peer until
    /// the receive that expects them. Holds at most two: the expected
    /// envelope (pulled by an eager drain while waiting elsewhere) and
    /// the next-phase one (the one-phase-lead bound caps the sender
    /// there); duplicates of either are discarded on arrival.
    stash: Vec<Vec<Vec<u64>>>,
    /// Installed fault schedule; `None` keeps the exchange path
    /// byte-identical to the pre-fault-layer behavior (no CRC work, no
    /// polling).
    plan: Option<FaultPlan>,
    /// Largest buffer capacity the fault-mode pool has been provisioned
    /// for (see [`BrickComm::prewarm`]); 0 until the first dispatch.
    prewarm_cap: usize,
    fstats: FaultStats,
    /// Load-balance policy; `None` (the default) keeps the static
    /// uniform grid and an exchange sequence bit-identical to the
    /// pre-balancer layer.
    balance: Option<BalancePolicy>,
    /// `borders()` calls so far (drives [`BalancePolicy::every`]).
    borders_count: u64,
    /// Pair-force seconds reported by the driver via
    /// [`Comm::note_work`] (cumulative).
    work_seconds: f64,
    /// `work_seconds` at the previous census, so each census weighs the
    /// work done *since* the last one.
    work_at_balance: f64,
    /// Census scratch: this rank's per-dimension histograms
    /// (`3 * policy.bins` words, concatenated x|y|z).
    local_hist: Vec<u64>,
    /// Census scratch: weighted global histograms, same layout.
    global_hist: Vec<u64>,
    /// Census scratch: owned-atom count per rank.
    rank_counts: Vec<u64>,
    /// Peak `nlocal` ever owned after a migration (max over the run,
    /// so transient spikes are not blind spots — see
    /// [`MultiRankRun::atom_imbalance`]).
    max_owned: usize,
}

impl BrickComm {
    /// Build the fully connected set of rank comms for `decomp`, in
    /// rank order. Each element goes to its rank's thread (they are
    /// `Send`, not `Sync`).
    pub fn create_all(decomp: &BrickDecomp) -> Vec<BrickComm> {
        let n = decomp.nranks();
        let mut data_tx: Vec<Vec<Option<Sender<Vec<u64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut data_rx: Vec<Vec<Option<Receiver<Vec<u64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rec_tx: Vec<Vec<Option<Sender<Vec<u64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rec_rx: Vec<Vec<Option<Receiver<Vec<u64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut ctrl_tx: Vec<Vec<Option<Sender<u64>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut ctrl_rx: Vec<Vec<Option<Receiver<u64>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                // Data a → b; its buffers recycle b → a; NACKs for it
                // travel b → a on the control channel.
                let (tx, rx) = channel();
                data_tx[a][b] = Some(tx);
                data_rx[b][a] = Some(rx);
                let (tx, rx) = channel();
                rec_tx[b][a] = Some(tx);
                rec_rx[a][b] = Some(rx);
                let (tx, rx) = channel();
                ctrl_tx[b][a] = Some(tx);
                ctrl_rx[a][b] = Some(rx);
            }
        }
        (0..n)
            .map(|rank| {
                let links = (0..n)
                    .map(|p| {
                        if p == rank {
                            None
                        } else {
                            Some(Link {
                                tx: data_tx[rank][p].take().unwrap(),
                                rx: data_rx[rank][p].take().unwrap(),
                                recycle_tx: rec_tx[rank][p].take().unwrap(),
                                recycle_rx: rec_rx[rank][p].take().unwrap(),
                                ctrl_tx: ctrl_tx[rank][p].take().unwrap(),
                                ctrl_rx: ctrl_rx[rank][p].take().unwrap(),
                                owed: std::cell::Cell::new(0),
                            })
                        }
                    })
                    .collect();
                let [_, py, pz] = decomp.grid;
                let coords = [rank / (py * pz), (rank / pz) % py, rank % pz];
                BrickComm {
                    decomp: decomp.clone(),
                    rank,
                    coords,
                    sub: decomp.subdomain(rank),
                    links,
                    pool: BufPool::new(),
                    send_plan: (0..n).map(|_| Vec::new()).collect(),
                    send_shift: (0..n).map(|_| Vec::new()).collect(),
                    recv_count: vec![0; n],
                    recv_shift: Vec::new(),
                    remote_base: 0,
                    bins: Bins::empty(),
                    boundary: Vec::new(),
                    records: Vec::new(),
                    dest: Vec::new(),
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                    stats: CommStats::default(),
                    halo_seconds: 0.0,
                    migrate_seconds: 0.0,
                    send_seq: vec![0; n],
                    recv_seq: vec![0; n],
                    last_sent: (0..n).map(|_| Vec::new()).collect(),
                    pending_retx: (0..n).map(|_| Vec::new()).collect(),
                    stash: (0..n).map(|_| Vec::new()).collect(),
                    plan: None,
                    prewarm_cap: 0,
                    fstats: FaultStats::default(),
                    balance: None,
                    borders_count: 0,
                    work_seconds: 0.0,
                    work_at_balance: 0.0,
                    local_hist: Vec::new(),
                    global_hist: Vec::new(),
                    rank_counts: Vec::new(),
                    max_owned: 0,
                }
            })
            .collect()
    }

    /// Install a fault schedule. All subsequent exchanges compute and
    /// verify payload CRCs, poll with timeouts instead of blocking, and
    /// inject the planned faults on the send side. Must be installed on
    /// every rank of the run (the plan is shared; both endpoints of an
    /// edge agree on the schedule by construction).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// Install a load-balance policy. Must be installed on every rank
    /// of the run before the first `borders()` call: the census is a
    /// collective exchange, and a rank without the policy would desync
    /// the per-edge sequence numbers.
    pub fn set_balance(&mut self, policy: Option<BalancePolicy>) {
        self.balance = policy;
    }

    /// Census + cut-plane update, called from `borders()` after
    /// positions are wrapped and before migration — migration then
    /// re-homes atoms across the *new* cut planes through the ordinary
    /// typed-channel exchange (and therefore under any installed fault
    /// plan: balance envelopes carry the same `[tag, seq, crc]` header
    /// and ride the same NACK/retransmit recovery).
    ///
    /// Determinism: the exchanged payload is the per-dimension integer
    /// histogram of owned atoms over *global box* fractions, which is
    /// ownership-independent — the weighted global histogram every rank
    /// assembles is identical no matter how atoms were distributed — so
    /// all ranks compute bitwise-identical cuts, and under the default
    /// [`balance::BalanceWeight::AtomCount`] the whole rebalance schedule is a
    /// pure function of the workload, never wall-clock.
    fn maybe_balance(&mut self, system: &mut System, cutghost: f64) -> Result<(), CommError> {
        let call = self.borders_count;
        self.borders_count += 1;
        let Some(policy) = self.balance else {
            return Ok(());
        };
        let nranks = self.decomp.nranks();
        if policy.every == 0 || nranks == 1 || !call.is_multiple_of(policy.every) {
            return Ok(());
        }
        let traced = profile::has_subscribers();
        let _span = traced.then(|| profile::begin_region("balance"));
        let bins = policy.bins.max(1);
        let nlocal = system.atoms.nlocal;
        let l = system.domain.lengths();
        // Local census: per-dimension histograms over global-box
        // fractions of this rank's owned (already wrapped) atoms,
        // concatenated x|y|z.
        self.local_hist.clear();
        self.local_hist.resize(3 * bins, 0);
        {
            let xh = system.atoms.x.h_view();
            for i in 0..nlocal {
                for (k, &lk) in l.iter().enumerate() {
                    let frac = (xh.at([i, k]) - system.domain.lo[k]) / lk;
                    let b = ((frac * bins as f64) as isize).clamp(0, bins as isize - 1) as usize;
                    self.local_hist[k * bins + b] += 1;
                }
            }
        }
        // Weight of this rank's census entries, in integer ticks; the
        // pair seconds accumulated since the previous census feed the
        // (advisory) PairTime mode.
        let work = self.work_seconds - self.work_at_balance;
        self.work_at_balance = self.work_seconds;
        let ticks = balance::weight_ticks(policy.weight, work, nlocal);

        // All-to-all census exchange: fixed-size envelopes
        // `[nlocal, ticks, hist...]`, so the pool reaches steady state
        // on the first exchange and never grows again.
        self.reclaim()?;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let mut buf = self.begin_msg(p, TAG_BALANCE, 2 + 3 * bins);
            buf.push(nlocal as u64);
            buf.push(ticks);
            buf.extend_from_slice(&self.local_hist);
            self.stats.balance_msgs += 1;
            let bytes = ((buf.len() - HDR) * 8) as u64;
            self.stats.balance_bytes += bytes;
            if traced {
                profile::note_instant(&format!("balance_bytes->r{p}"), bytes as f64);
            }
            self.dispatch(p, buf)?;
        }
        self.rank_counts.clear();
        self.rank_counts.resize(nranks, 0);
        self.global_hist.clear();
        self.global_hist.resize(3 * bins, 0);
        for p in 0..nranks {
            if p == self.rank {
                self.rank_counts[p] = nlocal as u64;
                for (g, &h) in self.global_hist.iter_mut().zip(&self.local_hist) {
                    *g += ticks * h;
                }
                continue;
            }
            let buf = self.recv_from(p, TAG_BALANCE)?;
            debug_assert_eq!(buf.len() - HDR, 2 + 3 * bins);
            self.rank_counts[p] = buf[HDR];
            let pticks = buf[HDR + 1];
            for (g, &h) in self.global_hist.iter_mut().zip(&buf[HDR + 2..]) {
                *g += pticks * h;
            }
            self.recycle(p, buf);
        }

        let imb = balance::census_imbalance(&self.rank_counts);
        if traced {
            profile::note_instant("comm.balance.imbalance", imb);
        }
        if imb <= policy.threshold {
            return Ok(());
        }
        // Recut every decomposed dimension to equalize the weighted
        // census; slabs may never come out narrower than `cutghost`
        // (the halo-layer requirement), so cuts are width-clamped — or
        // left at uniform fractions when even that is infeasible (an
        // over-decomposed box, which halo() diagnoses either way).
        let grid = self.decomp.grid;
        let mut cuts: [Vec<f64>; 3] = Default::default();
        for (k, ck) in cuts.iter_mut().enumerate() {
            let parts = grid[k];
            if parts == 1 {
                continue;
            }
            let mut c =
                balance::cuts_from_histogram(&self.global_hist[k * bins..(k + 1) * bins], parts);
            let min_frac = cutghost * (1.0 + 1e-9) / l[k];
            if parts as f64 * min_frac <= 1.0 {
                balance::clamp_cuts(&mut c, min_frac);
            } else {
                for (j, cj) in c.iter_mut().enumerate() {
                    *cj = (j + 1) as f64 / parts as f64;
                }
            }
            *ck = c;
        }
        self.decomp.set_cuts(Some(cuts));
        self.sub = self.decomp.subdomain(self.rank);
        self.stats.rebalances += 1;
        if traced {
            profile::note_instant("comm.balance.rebalance", imb);
        }
        Ok(())
    }

    /// Fault/recovery instant into the trace layer (summed into
    /// `rank{r}/comm.fault.*` metrics counters by `lkk-trace`).
    fn note_fault(&self, name: &str, value: f64) {
        if profile::has_subscribers() {
            profile::note_instant(name, value);
        }
    }

    /// Pull every outstanding buffer back into the pool, waiting for
    /// the exact count owed per peer. Waiting is deadlock-free: a peer
    /// recycles while draining its receives for the *previous* phase,
    /// which it must finish before it can participate in the phase this
    /// reclaim precedes — so every owed buffer is already in flight.
    /// In fault mode the wait polls, services retransmit requests (a
    /// stuck peer may need one of our parked envelopes before it can
    /// drain anything), and turns a vanished peer into an error.
    // Audited wall-clock site: lint_allow.toml LKK001 (fault path).
    #[allow(clippy::disallowed_methods)]
    fn reclaim(&mut self) -> Result<(), CommError> {
        // The `reclaim` span on a trace timeline is this rank *blocked*
        // on peers that have not yet drained the previous phase — the
        // simulated-MPI analogue of wait time in MPI_Send completion.
        let _span = profile::has_subscribers().then(|| profile::begin_region("reclaim"));
        if self.plan.is_none() {
            for p in 0..self.links.len() {
                let Some(link) = self.links[p].as_ref() else {
                    continue;
                };
                for _ in 0..link.owed.get() {
                    let buf = link
                        .recycle_rx
                        .recv()
                        .map_err(|_| CommError::PeerDisconnected {
                            rank: self.rank,
                            peer: p,
                            phase: "reclaim",
                        })?;
                    self.pool.free.push(buf);
                }
                link.owed.set(0);
            }
            return Ok(());
        }
        let policy = self.plan.as_ref().unwrap().policy();
        let poll = Duration::from_millis(policy.poll_ms);
        // Same wall-clock budget as a resilient receive: a peer that
        // cannot drain the previous phase within it is itself stuck on
        // an unrecoverable edge, and this rank must degrade to an error
        // rather than spin forever (the no-deadlock guarantee).
        let budget = Duration::from_millis(policy.budget_ms());
        for p in 0..self.links.len() {
            let started = Instant::now();
            while let Some(link) = self.links[p].as_ref() {
                if link.owed.get() == 0 {
                    break;
                }
                match link.recycle_rx.recv_timeout(poll) {
                    Ok(buf) => {
                        link.owed.set(link.owed.get() - 1);
                        self.pool.free.push(buf);
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        self.service_nacks();
                        self.drain_inbound();
                        if started.elapsed() >= budget {
                            self.fstats.timeouts += 1;
                            self.note_fault("comm.fault.timeout", p as f64);
                            return Err(CommError::Timeout {
                                rank: self.rank,
                                peer: p,
                                phase: "reclaim",
                                seq: self.send_seq[p],
                                retries: policy.max_retries,
                                waited_ms: started.elapsed().as_millis() as u64,
                            });
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(CommError::PeerDisconnected {
                            rank: self.rank,
                            peer: p,
                            phase: "reclaim",
                        })
                    }
                }
            }
        }
        Ok(())
    }

    fn send_to(&self, peer: usize, buf: Vec<u64>) -> Result<(), CommError> {
        let link = self.links[peer].as_ref().unwrap();
        link.owed.set(link.owed.get() + 1);
        let tag = buf[0];
        link.tx.send(buf).map_err(|_| CommError::PeerDisconnected {
            rank: self.rank,
            peer,
            phase: tag_name(tag),
        })
    }

    /// Start an envelope toward `peer`: acquire a pooled buffer sized
    /// for `payload_words` and write the `[tag, seq, crc]` header (crc
    /// is filled at dispatch when a fault plan is active).
    fn begin_msg(&mut self, peer: usize, tag: u64, payload_words: usize) -> Vec<u64> {
        let mut buf = self.pool.acquire(HDR + payload_words);
        buf.push(tag);
        buf.push(self.send_seq[peer]);
        buf.push(0);
        buf
    }

    /// Provision the pool for worst-case fault-path extras of the
    /// largest envelope class seen so far: per edge, up to two parked
    /// retransmit copies plus one in-flight duplicate/reorder copy can
    /// be live at once, on top of a full phase's worth of originals.
    /// Acquiring that many buffers at once and releasing them grows the
    /// pool *now* — a plan-determined point, reached during warmup for
    /// every class (a class first dispatched after warmup would grow
    /// the fault-free baseline too) — so later fault recovery never
    /// allocates, keeping `grow_count` frozen after warmup.
    fn prewarm(&mut self, cap: usize) {
        let peers = self.links.iter().filter(|l| l.is_some()).count();
        let mut held: Vec<Vec<u64>> = (0..4 * peers).map(|_| self.pool.acquire(cap)).collect();
        self.prewarm_cap = held
            .iter()
            .map(|b| b.capacity())
            .max()
            .unwrap_or(cap)
            .max(cap);
        while let Some(buf) = held.pop() {
            self.pool.free.push(buf);
        }
    }

    /// Transmit a packed envelope, injecting the planned fault for this
    /// `(edge, seq)` event if any. All pool demand of the fault paths
    /// happens here, at plan-determined points, which is what keeps
    /// `grow_count` a pure function of the seed (and zero after warmup).
    fn dispatch(&mut self, peer: usize, mut buf: Vec<u64>) -> Result<(), CommError> {
        let seq = self.send_seq[peer];
        let tag = buf[0];
        debug_assert_eq!(buf[1], seq, "envelope packed for a different round");
        self.send_seq[peer] = seq + 1;
        // Flow origin: the envelope is packed and about to leave. One
        // begin per (edge, tag, seq) — retransmits and duplicates are
        // re-deliveries of this same flow, not new ones. The quiesce
        // handshake rides the control plane and is not traced.
        if tag != TAG_QUIESCE && profile::has_subscribers() {
            profile::note_flow_begin(tag_name(tag), flow_id(self.rank, peer, tag, seq));
        }
        let Some(plan) = self.plan.clone() else {
            return self.send_to(peer, buf);
        };
        if buf.capacity() > self.prewarm_cap {
            self.prewarm(buf.capacity());
        }
        // Dispatching seq `s` proves the receiver finished phase `s-2`
        // (it sent its phase `s-1` envelopes, which required accepting
        // everything through `s-2`) — parked copies that old can never
        // be NACKed again. This happens when a reorder pre-send delivers
        // the payload of a dropped envelope, masking the drop: prune
        // them back into the pool at this plan-determined point, or
        // they would leak and grow the pool.
        let mut i = 0;
        while i < self.pending_retx[peer].len() {
            if self.pending_retx[peer][i].0 + 2 <= seq {
                let (_, old) = self.pending_retx[peer].remove(i);
                self.pool.free.push(old);
            } else {
                i += 1;
            }
        }
        buf[2] = crc32_words(&buf[HDR..]) as u64;
        if tag == TAG_QUIESCE {
            // Shutdown handshake: never faulted (see TAG_QUIESCE docs).
            return self.send_to(peer, buf);
        }
        if plan.edge_dead(self.rank, peer, seq) {
            // Unrecoverable: the transmission and any retransmit are
            // gone. The receiver must exhaust its retries.
            self.fstats.drops += 1;
            self.note_fault("comm.fault.dead_drop", seq as f64);
            self.pool.free.push(buf);
            return Ok(());
        }
        let event = plan.draw(self.rank, peer, seq);
        // A reorder fault needs the *previous* envelope before
        // `last_sent` is refreshed below.
        if let Some(ev) = event {
            if ev.kind == FaultKind::Reorder && !self.last_sent[peer].is_empty() {
                let stale_src = std::mem::take(&mut self.last_sent[peer]);
                let mut stale = self.pool.acquire(stale_src.len());
                stale.extend_from_slice(&stale_src);
                self.last_sent[peer] = stale_src;
                self.fstats.reorders += 1;
                self.note_fault("comm.fault.reorder", seq as f64);
                self.send_to(peer, stale)?;
            }
        }
        self.last_sent[peer].clear();
        self.last_sent[peer].extend_from_slice(&buf);
        match event.map(|ev| (ev.kind, ev)) {
            None | Some((FaultKind::Reorder, _)) => self.send_to(peer, buf),
            Some((FaultKind::Delay, ev)) => {
                self.fstats.delays += 1;
                self.note_fault("comm.fault.delay", ev.delay_ms as f64);
                std::thread::sleep(Duration::from_millis(ev.delay_ms));
                self.send_to(peer, buf)
            }
            Some((FaultKind::Drop, _)) => {
                // The packed envelope becomes its own retransmit copy:
                // the receiver times out, NACKs, and `service_nacks`
                // delivers it — zero extra pool demand.
                self.fstats.drops += 1;
                self.note_fault("comm.fault.drop", seq as f64);
                self.pending_retx[peer].push((seq, buf));
                debug_assert!(
                    self.pending_retx[peer].len() <= 2,
                    "retransmit ring overflow"
                );
                Ok(())
            }
            Some((FaultKind::Duplicate, _)) => {
                self.fstats.duplicates += 1;
                self.note_fault("comm.fault.duplicate", seq as f64);
                let mut copy = self.pool.acquire(buf.len());
                copy.extend_from_slice(&buf);
                self.send_to(peer, buf)?;
                self.send_to(peer, copy)
            }
            Some((FaultKind::Corrupt, ev)) => {
                // Park a clean copy for the NACK, then flip one bit of
                // the transmitted payload (or of the CRC word itself
                // when the payload is empty — either way validation
                // fails on arrival).
                self.fstats.corruptions += 1;
                self.note_fault("comm.fault.corrupt", seq as f64);
                let mut clean = self.pool.acquire(buf.len());
                clean.extend_from_slice(&buf);
                self.pending_retx[peer].push((seq, clean));
                debug_assert!(
                    self.pending_retx[peer].len() <= 2,
                    "retransmit ring overflow"
                );
                if buf.len() > HDR {
                    let i = HDR + (ev.aux as usize) % (buf.len() - HDR);
                    buf[i] ^= 1 << ((ev.aux >> 32) % 64);
                } else {
                    buf[2] ^= 1;
                }
                self.send_to(peer, buf)
            }
        }
    }

    /// Answer inbound retransmit requests. A NACK with no parked
    /// envelope is ignored on purpose: it can only mean the original
    /// was neither dropped nor corrupted, so it is in flight and will
    /// arrive — answering would need a fresh allocation at a
    /// timing-dependent moment, breaking pool determinism for nothing.
    fn service_nacks(&mut self) {
        for p in 0..self.links.len() {
            while let Some(link) = self.links[p].as_ref() {
                let seq = match link.ctrl_rx.try_recv() {
                    Ok(seq) => seq,
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                };
                if let Some(pos) = self.pending_retx[p].iter().position(|(s, _)| *s == seq) {
                    let (_, buf) = self.pending_retx[p].remove(pos);
                    self.fstats.retransmits += 1;
                    self.note_fault("comm.fault.retransmit", seq as f64);
                    // A send failure here means the requester died
                    // right after asking; the data-path receive will
                    // surface the disconnect.
                    let _ = self.send_to(p, buf);
                }
            }
        }
    }

    fn send_nack(&mut self, peer: usize, seq: u64) {
        self.fstats.nacks_sent += 1;
        self.note_fault("comm.fault.nack", seq as f64);
        // A dead peer is reported by the data-path receive, not here.
        let _ = self.links[peer].as_ref().unwrap().ctrl_tx.send(seq);
    }

    fn recv_from(&mut self, peer: usize, tag: u64) -> Result<Vec<u64>, CommError> {
        if self.plan.is_none() {
            let expected = self.recv_seq[peer];
            let buf = self.links[peer].as_ref().unwrap().rx.recv().map_err(|_| {
                CommError::PeerDisconnected {
                    rank: self.rank,
                    peer,
                    phase: tag_name(tag),
                }
            })?;
            debug_assert_eq!(buf[0], tag, "exchange sequence desynced");
            debug_assert_eq!(buf[1], expected, "envelope sequence desynced");
            self.recv_seq[peer] = expected + 1;
            // Flow terminus: the envelope identity is recomputed from
            // the same (edge, tag, seq) the sender stamped, so the ids
            // match without extra wire bytes.
            if tag != TAG_QUIESCE && profile::has_subscribers() {
                profile::note_flow_end(tag_name(tag), flow_id(peer, self.rank, tag, expected));
            }
            return Ok(buf);
        }
        self.recv_resilient(peer, tag)
    }

    /// Drain every inbound data channel without blocking, recycling
    /// stale envelopes and parking (at most one) future envelope per
    /// edge. Called from the fault-mode wait loops: a duplicate or a
    /// retransmit that raced its original sits *unread* in our channel
    /// until our next receive on that edge — but its sender counts it
    /// as owed and its *reclaim* blocks on our recycle. Two such
    /// leftovers on opposite directions of an edge (or around a cycle
    /// of edges) would deadlock every reclaim involved; eagerly
    /// draining while we ourselves wait breaks the cycle.
    fn drain_inbound(&mut self) {
        for p in 0..self.links.len() {
            loop {
                let buf = {
                    let Some(link) = self.links[p].as_ref() else {
                        break;
                    };
                    match link.rx.try_recv() {
                        Ok(b) => b,
                        // A disconnect is diagnosed on the data path.
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                };
                let seq = buf[1];
                if seq < self.recv_seq[p] {
                    self.fstats.stale_discards += 1;
                    self.note_fault("comm.fault.stale", seq as f64);
                    self.recycle(p, buf);
                } else {
                    self.park(p, buf);
                }
            }
        }
    }

    /// Park a not-yet-consumed envelope for peer `p` until the receive
    /// that expects it. Duplicates of an already-parked sequence are
    /// discarded, and a corrupted envelope is rejected (with an
    /// immediate retransmit request) rather than parked, so the stash
    /// only ever holds valid payloads — at most two: the currently
    /// expected sequence (pulled in by an eager drain while this rank
    /// waited elsewhere) and the next one (the one-phase-lead bound
    /// caps the sender there).
    fn park(&mut self, p: usize, buf: Vec<u64>) {
        let seq = buf[1];
        if self.stash[p].iter().any(|b| b[1] == seq) {
            self.fstats.stale_discards += 1;
            self.note_fault("comm.fault.stale", seq as f64);
            self.recycle(p, buf);
        } else if crc32_words(&buf[HDR..]) as u64 != buf[2] {
            self.fstats.crc_failures += 1;
            self.note_fault("comm.fault.crc", seq as f64);
            self.recycle(p, buf);
            self.send_nack(p, seq);
        } else {
            debug_assert!(
                seq <= self.recv_seq[p] + 1,
                "sender more than one phase ahead"
            );
            self.stash[p].push(buf);
            debug_assert!(self.stash[p].len() <= 2, "stash overflow");
        }
    }

    /// Fault-mode receive: poll the data channel, discard stale
    /// (duplicate / reordered) envelopes by sequence number, park one
    /// future envelope, reject CRC mismatches with an immediate NACK,
    /// and after `nack_base_ms` of silence start NACK rounds with
    /// bounded exponential backoff. Exhausting `max_retries` rounds
    /// returns [`CommError::Timeout`] — the no-deadlock guarantee.
    // Audited wall-clock site: lint_allow.toml LKK001 (fault path).
    #[allow(clippy::disallowed_methods)]
    fn recv_resilient(&mut self, peer: usize, tag: u64) -> Result<Vec<u64>, CommError> {
        let expected = self.recv_seq[peer];
        let policy = self.plan.as_ref().unwrap().policy();
        let phase = tag_name(tag);
        let start = Instant::now();
        let mut retries = 0u32;
        let mut backoff_ms = policy.nack_base_ms;
        let mut nack_at = start + Duration::from_millis(backoff_ms);
        loop {
            // An envelope parked by an earlier recovery round?
            let from_stash = self.stash[peer].iter().position(|b| b[1] == expected);
            let buf = if let Some(i) = from_stash {
                Some(self.stash[peer].remove(i))
            } else {
                match self.links[peer]
                    .as_ref()
                    .unwrap()
                    .rx
                    .recv_timeout(Duration::from_millis(policy.poll_ms))
                {
                    Ok(b) => Some(b),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(CommError::PeerDisconnected {
                            rank: self.rank,
                            peer,
                            phase,
                        })
                    }
                }
            };
            let Some(buf) = buf else {
                self.service_nacks();
                self.drain_inbound();
                if Instant::now() >= nack_at {
                    if retries >= policy.max_retries {
                        self.fstats.timeouts += 1;
                        self.note_fault("comm.fault.timeout", expected as f64);
                        return Err(CommError::Timeout {
                            rank: self.rank,
                            peer,
                            phase,
                            seq: expected,
                            retries,
                            waited_ms: start.elapsed().as_millis() as u64,
                        });
                    }
                    self.send_nack(peer, expected);
                    retries += 1;
                    backoff_ms = (backoff_ms * 2).min(policy.nack_cap_ms);
                    nack_at = Instant::now() + Duration::from_millis(backoff_ms);
                }
                continue;
            };
            let seq = buf[1];
            if seq < expected {
                // Duplicate or reordered leftover: already accepted.
                self.fstats.stale_discards += 1;
                self.note_fault("comm.fault.stale", seq as f64);
                self.recycle(peer, buf);
            } else if seq > expected {
                // The sender is one phase ahead (our envelope for this
                // round was dropped or is still in flight); park its
                // next-round envelope. Never dropped on the floor: a
                // lost buffer here would leak out of the sender's owed
                // accounting and wedge its reclaim.
                self.park(peer, buf);
            } else if crc32_words(&buf[HDR..]) as u64 != buf[2] {
                self.fstats.crc_failures += 1;
                self.note_fault("comm.fault.crc", seq as f64);
                self.recycle(peer, buf);
                // Ask for the parked clean copy right away (does not
                // count against the timeout retry budget: the sender
                // provably holds a copy for a corrupted envelope).
                self.send_nack(peer, expected);
            } else {
                debug_assert_eq!(buf[0], tag, "exchange sequence desynced");
                self.recv_seq[peer] = expected + 1;
                // Acceptance is the flow terminus even when the payload
                // arrived via retransmit: stale/corrupt copies above
                // were discarded without ending the flow, so exactly
                // one end fires per id.
                if tag != TAG_QUIESCE && profile::has_subscribers() {
                    profile::note_flow_end(tag_name(tag), flow_id(peer, self.rank, tag, expected));
                }
                return Ok(buf);
            }
        }
    }

    fn recycle(&self, peer: usize, buf: Vec<u64>) {
        // The peer may already be shutting down at gather time; its
        // pool dying with it is fine.
        let _ = self.links[peer].as_ref().unwrap().recycle_tx.send(buf);
    }

    /// Migrate owned atoms whose wrapped position now falls in another
    /// rank's brick. Rows are rebuilt as [survivors][immigrants in
    /// ascending peer order]; forces and style scratch are recomputed
    /// after the rebuild and are not carried.
    fn migrate(&mut self, system: &mut System) -> Result<(), CommError> {
        let nranks = self.decomp.nranks();
        let nlocal = system.atoms.nlocal;
        self.dest.clear();
        for i in 0..nlocal {
            self.dest.push(self.decomp.rank_of(&system.atoms.pos(i)));
        }
        self.records.clear();
        for i in 0..nlocal {
            if self.dest[i] == self.rank {
                self.records.push(system.atoms.record(i));
            }
        }
        let traced = profile::has_subscribers();
        self.reclaim()?;
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let leavers = self.dest.iter().filter(|&&d| d == p).count();
                let mut buf = self.begin_msg(p, TAG_MIGRATE, leavers * MIGRATE_WORDS);
                for i in 0..nlocal {
                    if self.dest[i] == p {
                        pack_record(&mut buf, &system.atoms.record(i));
                    }
                }
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > HDR {
                    self.stats.migrate_msgs += 1;
                    let bytes = ((buf.len() - HDR) * 8) as u64;
                    self.stats.migrate_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("migrate_bytes->r{p}"), bytes as f64);
                    }
                }
                self.dispatch(p, buf)?;
            }
            self.outbox = outbox;
        }
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = {
                let _span = traced.then(|| profile::begin_region("recv"));
                self.recv_from(p, TAG_MIGRATE)?
            };
            debug_assert_eq!((buf.len() - HDR) % MIGRATE_WORDS, 0);
            let _span = traced.then(|| profile::begin_region("unpack"));
            let mut k = HDR;
            while k < buf.len() {
                let r = unpack_record(&buf[k..k + MIGRATE_WORDS]);
                debug_assert_eq!(
                    self.decomp.rank_of(&r.x),
                    self.rank,
                    "migrated atom landed on the wrong rank"
                );
                self.records.push(r);
                k += MIGRATE_WORDS;
            }
            drop(_span);
            self.recycle(p, buf);
        }
        // Rebuild the owned rows from the record list.
        let new_n = self.records.len();
        self.max_owned = self.max_owned.max(new_n);
        system.atoms.resize_all(new_n, 0);
        system.atoms.nlocal = new_n;
        system.atoms.nghost = 0;
        {
            let xh = system.atoms.x.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                for (k, &v) in r.x.iter().enumerate() {
                    xh.set([i, k], v);
                }
            }
        }
        {
            let vh = system.atoms.v.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                for (k, &v) in r.v.iter().enumerate() {
                    vh.set([i, k], v);
                }
            }
        }
        {
            let th = system.atoms.tag.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                th.set([i], r.tag);
            }
        }
        {
            let ty = system.atoms.typ.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                ty.set([i], r.typ);
            }
        }
        {
            let qh = system.atoms.q.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                qh.set([i], r.q);
            }
        }
        system.atoms.image.clear();
        system
            .atoms
            .image
            .extend(self.records.iter().map(|r| r.image));
        Ok(())
    }

    /// Build the ghost layer: rows become [locals][periodic self
    /// images][remote segments in ascending peer order]. Candidates
    /// come from the boundary bin shell; each candidate is tested
    /// against the 26 neighbor-brick directions, whose periodic wraps
    /// determine the shift transmitted with the border message.
    fn halo(&mut self, system: &mut System, cutghost: f64) -> Result<(), CommError> {
        let nranks = self.decomp.nranks();
        let l = system.domain.lengths();
        for (k, &len) in l.iter().enumerate() {
            if self.decomp.grid[k] == 1 {
                // Same minimum-image bound the single-rank build asserts.
                assert!(
                    len >= 2.0 * cutghost,
                    "box length {len} in dim {k} smaller than 2*cutghost = {}",
                    2.0 * cutghost
                );
            } else {
                assert!(
                    self.sub.hi[k] - self.sub.lo[k] >= cutghost,
                    "sub-domain narrower than cutghost {cutghost} in dim {k}; use fewer ranks"
                );
            }
        }
        // Bin owned atoms (no ghost rows exist here) over the
        // sub-domain; the outermost bin layer covers everything within
        // `cutghost` of a face.
        self.bins.rebuild(&system.atoms, &self.sub, cutghost, 0.0);
        self.bins.boundary_atoms(&mut self.boundary);

        let mut self_map = std::mem::take(&mut system.ghosts);
        self_map.owner.clear();
        self_map.shift.clear();
        self_map.cutghost = cutghost;
        for plan in &mut self.send_plan {
            plan.clear();
        }
        for shifts in &mut self.send_shift {
            shifts.clear();
        }
        let grid = self.decomp.grid;
        let [py, pz] = [grid[1], grid[2]];
        for &ai in &self.boundary {
            let i = ai as usize;
            let x = system.atoms.pos(i);
            for dx in -1i32..=1 {
                for dy in -1i32..=1 {
                    for dz in -1i32..=1 {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let d = [dx, dy, dz];
                        let mut near = true;
                        let mut c = [0usize; 3];
                        let mut shift = [0.0f64; 3];
                        for k in 0..3 {
                            match d[k] {
                                1 => {
                                    near &= x[k] >= self.sub.hi[k] - cutghost;
                                    let up = self.coords[k] + 1;
                                    if up == grid[k] {
                                        c[k] = 0;
                                        shift[k] = -l[k];
                                    } else {
                                        c[k] = up;
                                    }
                                }
                                -1 => {
                                    near &= x[k] < self.sub.lo[k] + cutghost;
                                    if self.coords[k] == 0 {
                                        c[k] = grid[k] - 1;
                                        shift[k] = l[k];
                                    } else {
                                        c[k] = self.coords[k] - 1;
                                    }
                                }
                                _ => c[k] = self.coords[k],
                            }
                            if !near {
                                break;
                            }
                        }
                        if !near {
                            continue;
                        }
                        let target = (c[0] * py + c[1]) * pz + c[2];
                        if target == self.rank {
                            // A periodic image of our own atom (every
                            // non-zero direction wrapped).
                            self_map.owner.push(i);
                            self_map.shift.push(shift);
                        } else {
                            self.send_plan[target].push(ai);
                            self.send_shift[target].push(shift);
                        }
                    }
                }
            }
        }

        // Exchange border messages: identity + position + shift once;
        // subsequent forwards reference the same ordering implicitly.
        let traced = profile::has_subscribers();
        self.reclaim()?;
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let mut buf = self.begin_msg(p, TAG_BORDER, self.send_plan[p].len() * BORDER_WORDS);
                {
                    let xh = system.atoms.x.h_view();
                    let tagh = system.atoms.tag.h_view();
                    let typh = system.atoms.typ.h_view();
                    let qh = system.atoms.q.h_view();
                    for (&ai, s) in self.send_plan[p].iter().zip(&self.send_shift[p]) {
                        let i = ai as usize;
                        buf.push(tagh.at([i]) as u64);
                        buf.push(typh.at([i]) as i64 as u64);
                        buf.push(qh.at([i]).to_bits());
                        for k in 0..3 {
                            buf.push(xh.at([i, k]).to_bits());
                        }
                        for &sk in s {
                            buf.push(sk.to_bits());
                        }
                    }
                }
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > HDR {
                    self.stats.border_msgs += 1;
                    let bytes = ((buf.len() - HDR) * 8) as u64;
                    self.stats.border_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("border_bytes->r{p}"), bytes as f64);
                    }
                }
                self.dispatch(p, buf)?;
            }
            self.outbox = outbox;
        }
        self.inbox.clear();
        let mut nremote = 0usize;
        {
            let _span = traced.then(|| profile::begin_region("recv"));
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let buf = self.recv_from(p, TAG_BORDER)?;
                debug_assert_eq!((buf.len() - HDR) % BORDER_WORDS, 0);
                let count = (buf.len() - HDR) / BORDER_WORDS;
                self.recv_count[p] = count;
                nremote += count;
                self.inbox.push((p, buf));
            }
        }
        let _unpack_span = traced.then(|| profile::begin_region("unpack"));

        let nlocal = system.atoms.nlocal;
        let nself = self_map.nghost();
        system.atoms.resize_all(nlocal + nself + nremote, nlocal);
        system.atoms.nghost = nself + nremote;
        self.remote_base = nlocal + nself;

        // Self images: metadata from the owner rows, then positions.
        {
            let typh = system.atoms.typ.h_view_mut();
            for (g, &o) in self_map.owner.iter().enumerate() {
                let v = typh.at([o]);
                typh.set([nlocal + g], v);
            }
        }
        {
            let qh = system.atoms.q.h_view_mut();
            for (g, &o) in self_map.owner.iter().enumerate() {
                let v = qh.at([o]);
                qh.set([nlocal + g], v);
            }
        }
        {
            let tagh = system.atoms.tag.h_view_mut();
            for (g, &o) in self_map.owner.iter().enumerate() {
                let v = tagh.at([o]);
                tagh.set([nlocal + g], v);
            }
        }
        crate::comm::forward_positions(&mut system.atoms, &self_map);

        // Remote segments, ascending peer order.
        self.recv_shift.clear();
        let mut row = self.remote_base;
        let mut inbox = std::mem::take(&mut self.inbox);
        for (p, buf) in inbox.drain(..) {
            let count = (buf.len() - HDR) / BORDER_WORDS;
            let mut k = HDR;
            for _ in 0..count {
                let tag = buf[k] as i64;
                let typ = buf[k + 1] as i64 as i32;
                let q = f64::from_bits(buf[k + 2]);
                let mut shift = [0.0f64; 3];
                for (kk, s) in shift.iter_mut().enumerate() {
                    *s = f64::from_bits(buf[k + 6 + kk]);
                }
                {
                    let xh = system.atoms.x.h_view_mut();
                    for kk in 0..3 {
                        xh.set([row, kk], f64::from_bits(buf[k + 3 + kk]) + shift[kk]);
                    }
                }
                system.atoms.tag.h_view_mut().set([row], tag);
                system.atoms.typ.h_view_mut().set([row], typ);
                system.atoms.q.h_view_mut().set([row], q);
                self.recv_shift.push(shift);
                row += 1;
                k += BORDER_WORDS;
            }
            self.recycle(p, buf);
        }
        self.inbox = inbox;
        system.ghosts = self_map;
        Ok(())
    }

    /// Shutdown handshake, fault mode only: exchange one exempt
    /// envelope with every peer and wait for theirs, servicing
    /// retransmit requests throughout. A rank that returned early would
    /// otherwise strand a peer still waiting on one of its parked
    /// retransmits; after `quiesce` returns, every peer has completed
    /// its last faulted exchange, so tearing down the channels is safe.
    fn quiesce(&mut self) -> Result<(), CommError> {
        if self.plan.is_none() || self.decomp.nranks() == 1 {
            return Ok(());
        }
        let nranks = self.decomp.nranks();
        self.reclaim()?;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = self.begin_msg(p, TAG_QUIESCE, 0);
            self.dispatch(p, buf)?;
        }
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = self.recv_from(p, TAG_QUIESCE)?;
            self.recycle(p, buf);
        }
        Ok(())
    }
}

impl Comm for BrickComm {
    fn name(&self) -> &'static str {
        "brick"
    }

    fn nranks(&self) -> usize {
        self.decomp.nranks()
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn borders(&mut self, system: &mut System, cutghost: f64) -> Result<(), CommError> {
        // Migration repacks every per-atom field, so everything must be
        // host-fresh (the caller guarantees only positions).
        system.atoms.sync(&Space::Serial, Mask::ALL);
        system.atoms.nghost = 0;
        system.atoms.wrap_positions(&system.domain);
        // Rebalance (policy-gated) *before* migration: migration then
        // re-homes atoms across the freshly moved cut planes.
        self.maybe_balance(system, cutghost)?;
        {
            let region = profile::begin_region("migrate");
            self.migrate(system)?;
            self.migrate_seconds += region.finish();
        }
        {
            let region = profile::begin_region("halo");
            self.halo(system, cutghost)?;
            self.halo_seconds += region.finish();
        }
        Ok(())
    }

    fn forward(&mut self, system: &mut System) -> Result<(), CommError> {
        crate::comm::forward_positions(&mut system.atoms, &system.ghosts);
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return Ok(());
        }
        let traced = profile::has_subscribers();
        self.reclaim()?;
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let mut buf = self.begin_msg(p, TAG_FORWARD, self.send_plan[p].len() * 3);
                {
                    let xh = system.atoms.x.h_view();
                    for &ai in &self.send_plan[p] {
                        let i = ai as usize;
                        for k in 0..3 {
                            buf.push(xh.at([i, k]).to_bits());
                        }
                    }
                }
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > HDR {
                    self.stats.forward_msgs += 1;
                    let bytes = ((buf.len() - HDR) * 8) as u64;
                    self.stats.forward_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("fwd_bytes->r{p}"), bytes as f64);
                    }
                }
                self.dispatch(p, buf)?;
            }
            self.outbox = outbox;
        }
        let mut row = self.remote_base;
        let mut gi = 0usize;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = {
                let _span = traced.then(|| profile::begin_region("recv"));
                self.recv_from(p, TAG_FORWARD)?
            };
            debug_assert_eq!(buf.len() - HDR, self.recv_count[p] * 3);
            {
                let _span = traced.then(|| profile::begin_region("unpack"));
                let xh = system.atoms.x.h_view_mut();
                for c in 0..self.recv_count[p] {
                    let s = self.recv_shift[gi];
                    for (k, &sk) in s.iter().enumerate() {
                        xh.set([row, k], f64::from_bits(buf[HDR + c * 3 + k]) + sk);
                    }
                    row += 1;
                    gi += 1;
                }
            }
            self.recycle(p, buf);
        }
        Ok(())
    }

    fn reverse(&mut self, system: &mut System) -> Result<(), CommError> {
        // Fold periodic self images first (single-rank ordering), then
        // remote contributions in ascending peer order — deterministic
        // on every rank.
        crate::comm::reverse_forces(&mut system.atoms, &system.ghosts);
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return Ok(());
        }
        let traced = profile::has_subscribers();
        self.reclaim()?;
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            let mut row = self.remote_base;
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let count = self.recv_count[p];
                let mut buf = self.begin_msg(p, TAG_REVERSE, count * 3);
                {
                    let fh = system.atoms.f.h_view_mut();
                    for c in 0..count {
                        for k in 0..3 {
                            buf.push(fh.at([row + c, k]).to_bits());
                            fh.set([row + c, k], 0.0);
                        }
                    }
                }
                row += count;
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > HDR {
                    self.stats.reverse_msgs += 1;
                    let bytes = ((buf.len() - HDR) * 8) as u64;
                    self.stats.reverse_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("rev_bytes->r{p}"), bytes as f64);
                    }
                }
                self.dispatch(p, buf)?;
            }
            self.outbox = outbox;
        }
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = {
                let _span = traced.then(|| profile::begin_region("recv"));
                self.recv_from(p, TAG_REVERSE)?
            };
            debug_assert_eq!(buf.len() - HDR, self.send_plan[p].len() * 3);
            {
                let _span = traced.then(|| profile::begin_region("unpack"));
                let fh = system.atoms.f.h_view_mut();
                for (c, &ai) in self.send_plan[p].iter().enumerate() {
                    let i = ai as usize;
                    for k in 0..3 {
                        let v = fh.at([i, k]) + f64::from_bits(buf[HDR + c * 3 + k]);
                        fh.set([i, k], v);
                    }
                }
            }
            self.recycle(p, buf);
        }
        Ok(())
    }

    fn forward_scalar(&mut self, system: &mut System, values: &mut [f64]) -> Result<(), CommError> {
        let nlocal = system.atoms.nlocal;
        for (g, &owner) in system.ghosts.owner.iter().enumerate() {
            values[nlocal + g] = values[owner];
        }
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return Ok(());
        }
        let traced = profile::has_subscribers();
        self.reclaim()?;
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let mut buf = self.begin_msg(p, TAG_SCALAR, self.send_plan[p].len());
                for &ai in &self.send_plan[p] {
                    buf.push(values[ai as usize].to_bits());
                }
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > HDR {
                    self.stats.scalar_msgs += 1;
                    let bytes = ((buf.len() - HDR) * 8) as u64;
                    self.stats.scalar_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("scalar_bytes->r{p}"), bytes as f64);
                    }
                }
                self.dispatch(p, buf)?;
            }
            self.outbox = outbox;
        }
        let mut row = self.remote_base;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = {
                let _span = traced.then(|| profile::begin_region("recv"));
                self.recv_from(p, TAG_SCALAR)?
            };
            debug_assert_eq!(buf.len() - HDR, self.recv_count[p]);
            {
                let _span = traced.then(|| profile::begin_region("unpack"));
                for &w in &buf[HDR..] {
                    values[row] = f64::from_bits(w);
                    row += 1;
                }
            }
            self.recycle(p, buf);
        }
        Ok(())
    }

    fn allreduce_or(&mut self, flag: bool) -> Result<bool, CommError> {
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return Ok(flag);
        }
        self.stats.allreduce_count += 1;
        self.reclaim()?;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let mut buf = self.begin_msg(p, TAG_REDUCE, 1);
            buf.push(flag as u64);
            self.dispatch(p, buf)?;
        }
        let mut acc = flag;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = self.recv_from(p, TAG_REDUCE)?;
            acc |= buf[HDR] != 0;
            self.recycle(p, buf);
        }
        Ok(acc)
    }

    fn allreduce_sum(&mut self, value: f64) -> Result<f64, CommError> {
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return Ok(value);
        }
        self.stats.allreduce_count += 1;
        self.reclaim()?;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let mut buf = self.begin_msg(p, TAG_REDUCE, 1);
            buf.push(value.to_bits());
            self.dispatch(p, buf)?;
        }
        // Combine in ascending rank order (own term in place), so every
        // rank computes the bitwise-identical sum.
        let mut acc = 0.0;
        for p in 0..nranks {
            if p == self.rank {
                acc += value;
            } else {
                let buf = self.recv_from(p, TAG_REDUCE)?;
                acc += f64::from_bits(buf[HDR]);
                self.recycle(p, buf);
            }
        }
        Ok(acc)
    }

    fn quiesce(&mut self) -> Result<(), CommError> {
        BrickComm::quiesce(self)
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn fault_stats(&self) -> FaultStats {
        self.fstats
    }

    fn grow_count(&self) -> u64 {
        self.pool.grow_count
    }

    fn phase_seconds(&self) -> [f64; 2] {
        [self.halo_seconds, self.migrate_seconds]
    }

    fn note_work(&mut self, seconds: f64) {
        self.work_seconds = seconds;
    }

    fn max_owned(&self) -> usize {
        self.max_owned
    }
}

fn pack_record(buf: &mut Vec<u64>, r: &AtomRecord) {
    buf.push(r.tag as u64);
    buf.push(r.typ as i64 as u64);
    buf.push(r.q.to_bits());
    for &v in &r.x {
        buf.push(v.to_bits());
    }
    for &v in &r.v {
        buf.push(v.to_bits());
    }
    for &v in &r.image {
        buf.push(v as i64 as u64);
    }
}

fn unpack_record(words: &[u64]) -> AtomRecord {
    AtomRecord {
        tag: words[0] as i64,
        typ: words[1] as i64 as i32,
        q: f64::from_bits(words[2]),
        x: [
            f64::from_bits(words[3]),
            f64::from_bits(words[4]),
            f64::from_bits(words[5]),
        ],
        v: [
            f64::from_bits(words[6]),
            f64::from_bits(words[7]),
            f64::from_bits(words[8]),
        ],
        image: [
            words[9] as i64 as i32,
            words[10] as i64 as i32,
            words[11] as i64 as i32,
        ],
    }
}

// ---------------------------------------------------------------------
// Rank-parallel driver
// ---------------------------------------------------------------------

/// Everything a driver run needs besides the per-rank styles: the
/// initial atoms (as records), the global box, the step counts, and the
/// communication layout. [`RunSpec::run`] is the unified entry point —
/// single-rank and brick-decomposed runs share it and return the same
/// gathered [`MultiRankRun`].
#[derive(Debug, Clone)]
pub struct RunSpec {
    pub records: Vec<AtomRecord>,
    /// Per-type mass table (global, not part of the records).
    pub masses: Vec<f64>,
    pub domain: Domain,
    pub units: Units,
    pub space: Space,
    /// Steps run before the grow counters are snapshotted (pool sizes
    /// may still grow while the system equilibrates).
    pub warmup_steps: u64,
    /// Measured steps after warmup.
    pub steps: u64,
    /// When set, every rank installs the same seeded [`FaultPlan`] on
    /// its [`BrickComm`] before the run (see [`fault`]).
    pub fault: Option<FaultConfig>,
    /// Communication layout: [`CommSpec::Single`] (the default), or
    /// [`CommSpec::Brick`] with a rank count and an optional
    /// load-balance policy.
    pub comm: CommSpec,
}

impl RunSpec {
    /// Capture `atoms` as the initial condition (LJ units, serial
    /// space, no warmup, single-rank comm by default — set the public
    /// fields or chain [`RunSpec::comm`] to change).
    pub fn new(atoms: &AtomData, domain: Domain, steps: u64) -> Self {
        RunSpec {
            records: (0..atoms.nlocal).map(|i| atoms.record(i)).collect(),
            masses: atoms.mass.clone(),
            domain,
            units: Units::lj(),
            space: Space::Serial,
            warmup_steps: 0,
            steps,
            fault: None,
            comm: CommSpec::Single,
        }
    }

    /// Set the communication layout (builder-style).
    pub fn comm(mut self, comm: CommSpec) -> Self {
        self.comm = comm;
        self
    }
}

/// Final state of one atom of a rank-parallel run, gathered and keyed
/// by global tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankAtomState {
    pub tag: i64,
    pub typ: i32,
    pub x: [f64; 3],
    pub v: [f64; 3],
    pub f: [f64; 3],
}

/// Gathered result of [`RunSpec::run`]: final atom states plus the
/// reduced energies and the per-rank diagnostics the perf harness and
/// the equivalence tests assert on.
#[derive(Debug, Clone)]
pub struct MultiRankRun {
    pub nranks: usize,
    pub natoms: usize,
    pub steps: u64,
    /// All atoms, sorted by tag.
    pub states: Vec<RankAtomState>,
    /// Globally reduced pair energy of the final configuration.
    pub e_pair: f64,
    /// Globally reduced kinetic energy of the final configuration.
    pub e_kinetic: f64,
    /// Per-rank thermo rows (local quantities — not reduced).
    pub thermo: Vec<Vec<ThermoRow>>,
    /// Exchange counters summed over ranks.
    pub comm_stats: CommStats,
    /// Message-pool growths summed over ranks: total and after warmup.
    pub comm_grow: u64,
    pub comm_grow_after_warmup: u64,
    /// Neighbor-list growths summed over ranks: total and after warmup.
    pub neighbor_grow: u64,
    pub neighbor_grow_after_warmup: u64,
    /// Scatter-pool growths summed over ranks: total and after warmup.
    pub scatter_grow: u64,
    pub scatter_grow_after_warmup: u64,
    pub rebuild_counts: Vec<u64>,
    /// Neighbor pairs summed over ranks at the final build.
    pub total_pairs: u64,
    pub timings: Vec<Timings>,
    /// Owned (`nlocal`) atoms per rank at the end of the run.
    pub owned_atoms: Vec<usize>,
    /// Peak owned atoms per rank over the whole run (sampled at every
    /// migration), so transient spikes between rebalances are visible.
    pub owned_atoms_peak: Vec<usize>,
    /// Fault-injection / recovery counters summed over ranks (all zero
    /// unless [`RunSpec::fault`] was set).
    pub fault_stats: FaultStats,
}

/// max/mean of a per-rank sample: 1.0 = perfectly balanced, and the
/// excess over 1.0 is the fraction of the slowest rank's work the
/// average rank does not share (the paper's strong-scaling breakdowns
/// hinge on exactly this ratio).
fn imbalance(samples: impl Iterator<Item = f64>) -> f64 {
    let (mut max, mut sum, mut n) = (f64::NEG_INFINITY, 0.0, 0u32);
    for s in samples {
        max = max.max(s);
        sum += s;
        n += 1;
    }
    if n == 0 || sum <= 0.0 {
        return 1.0;
    }
    max / (sum / n as f64)
}

impl MultiRankRun {
    /// Load imbalance of the atom distribution: the peak `nlocal` any
    /// rank held at any point of the run, over the ideal mean
    /// (`natoms / nranks`). Max-over-run rather than final-census, so a
    /// transient pile-up between rebalances is not a blind spot (the
    /// final-census version reported 1.0 for a run whose midpoint was
    /// badly skewed).
    pub fn atom_imbalance(&self) -> f64 {
        let mean = self.natoms as f64 / self.nranks.max(1) as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        let peak = self.owned_atoms_peak.iter().copied().max().unwrap_or(0);
        (peak as f64 / mean).max(1.0)
    }

    /// Load imbalance of the *final* atom census: max/mean of
    /// `owned_atoms` (the pre-PR-8 `atom_imbalance` definition).
    pub fn final_atom_imbalance(&self) -> f64 {
        imbalance(self.owned_atoms.iter().map(|&n| n as f64))
    }

    /// Load imbalance of the measured pair-force time: max/mean of the
    /// per-rank `Timings::pair` seconds. Wall-clock derived — advisory,
    /// never part of a deterministic baseline.
    pub fn pair_time_imbalance(&self) -> f64 {
        imbalance(self.timings.iter().map(|t| t.pair))
    }
}

/// One or more ranks failed a rank-parallel run: the per-rank
/// [`CommError`]s, in ascending rank order. Ranks that completed (or
/// were wedged behind the failing ones and timed out) each contribute
/// their own entry.
#[derive(Debug, Clone)]
pub struct CommFailure {
    pub nranks: usize,
    pub errors: Vec<(usize, CommError)>,
}

impl std::fmt::Display for CommFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} of {} ranks failed:", self.errors.len(), self.nranks)?;
        for (rank, err) in &self.errors {
            write!(f, " [rank {rank}: {err}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for CommFailure {}

struct RankOutcome {
    states: Vec<RankAtomState>,
    e_pair: f64,
    e_kinetic: f64,
    thermo: Vec<ThermoRow>,
    stats: CommStats,
    comm_grow: u64,
    comm_grow_warm: u64,
    neighbor_grow: u64,
    neighbor_grow_warm: u64,
    scatter_grow: u64,
    scatter_grow_warm: u64,
    rebuild_count: u64,
    total_pairs: u64,
    timings: Timings,
    nlocal: usize,
    nlocal_peak: usize,
    fstats: FaultStats,
}

impl RunSpec {
    /// Run this spec through its configured [`CommSpec`] — the unified
    /// driver entry point.
    ///
    /// `factory` is called once per rank with the rank index and that
    /// rank's [`System`] (atoms partitioned by brick, comm layer
    /// installed) and must return the [`Simulation`] to drive — which
    /// is how *any* pair style or fix runs unmodified on N ranks. Every
    /// rank must be configured identically (same styles, same neighbor
    /// settings): the exchanges are collective, and divergent
    /// configuration desyncs them.
    ///
    /// Returns `Err(CommFailure)` when any rank aborts with a
    /// [`CommError`] (unrecoverable injected fault, peer disconnect, or
    /// rank panic); the surviving ranks drain out via their own bounded
    /// retry budgets, so the call returns instead of deadlocking.
    pub fn run<F>(&self, factory: F) -> Result<MultiRankRun, CommFailure>
    where
        F: Fn(usize, System) -> Simulation + Sync,
    {
        match self.comm {
            CommSpec::Single => self.run_single(|system| factory(0, system)),
            CommSpec::Brick { ranks, balance } => self.run_brick(ranks, balance, &factory),
        }
    }

    /// Single-rank arm of the unified driver, without the `Sync` bound
    /// (no threads are spawned): bit-for-bit the classic in-process
    /// `Simulation::run` loop on a [`crate::comm::SingleRankComm`],
    /// gathered into the same [`MultiRankRun`] shape the brick arm
    /// returns.
    pub fn run_single<F>(&self, factory: F) -> Result<MultiRankRun, CommFailure>
    where
        F: FnOnce(System) -> Simulation,
    {
        let fail = |err: CommError| CommFailure {
            nranks: 1,
            errors: vec![(0, err)],
        };
        let natoms = self.records.len();
        let atoms = AtomData::from_records(&self.records, &self.masses);
        let system = System::new(atoms, self.domain, self.space.clone()).with_units(self.units);
        let mut sim = factory(system);
        sim.try_run(self.warmup_steps).map_err(fail)?;
        let comm_grow_warm = sim.comm_grow_count();
        let neighbor_grow_warm = sim.neighbor_grow_count();
        let scatter_grow_warm = sim.pair.scatter_grow_count();
        sim.try_run(self.steps).map_err(fail)?;
        let total_pairs = sim.neighbor_list().total_pairs;
        sim.system.atoms.sync(&Space::Serial, Mask::ALL);
        let mut states: Vec<RankAtomState> = {
            let a = &sim.system.atoms;
            let x = a.x.h_view();
            let v = a.v.h_view();
            let f = a.f.h_view();
            let tag = a.tag.h_view();
            let typ = a.typ.h_view();
            (0..a.nlocal)
                .map(|i| RankAtomState {
                    tag: tag.at([i]),
                    typ: typ.at([i]),
                    x: [x.at([i, 0]), x.at([i, 1]), x.at([i, 2])],
                    v: [v.at([i, 0]), v.at([i, 1]), v.at([i, 2])],
                    f: [f.at([i, 0]), f.at([i, 1]), f.at([i, 2])],
                })
                .collect()
        };
        states.sort_by_key(|s| s.tag);
        let nlocal = sim.system.atoms.nlocal;
        let peak = sim
            .system
            .comm
            .as_ref()
            .map_or(0, |c| c.max_owned())
            .max(nlocal);
        Ok(MultiRankRun {
            nranks: 1,
            natoms,
            steps: self.steps,
            e_pair: sim.last_results.energy,
            e_kinetic: compute::kinetic_energy(&sim.system.atoms, &sim.system.units),
            comm_stats: sim.comm_stats(),
            comm_grow: sim.comm_grow_count(),
            comm_grow_after_warmup: sim.comm_grow_count() - comm_grow_warm,
            neighbor_grow: sim.neighbor_grow_count(),
            neighbor_grow_after_warmup: sim.neighbor_grow_count() - neighbor_grow_warm,
            scatter_grow: sim.pair.scatter_grow_count(),
            scatter_grow_after_warmup: sim.pair.scatter_grow_count() - scatter_grow_warm,
            rebuild_counts: vec![sim.rebuild_count],
            total_pairs,
            owned_atoms: vec![nlocal],
            owned_atoms_peak: vec![peak],
            timings: vec![sim.timings],
            thermo: vec![sim.thermo.clone()],
            states,
            fault_stats: sim.comm_fault_stats(),
        })
    }

    /// Brick-decomposed arm of the unified driver: one thread per rank,
    /// each inside a `rank{r}` profiling region.
    fn run_brick<F>(
        &self,
        nranks: usize,
        balance: Option<BalancePolicy>,
        factory: &F,
    ) -> Result<MultiRankRun, CommFailure>
    where
        F: Fn(usize, System) -> Simulation + Sync,
    {
        let spec = self;
        let decomp = BrickDecomp::new(spec.domain, nranks);
        let nranks = decomp.nranks();
        let comms = BrickComm::create_all(&decomp);
        let natoms = spec.records.len();
        let mut shares: Vec<Vec<AtomRecord>> = (0..nranks).map(|_| Vec::new()).collect();
        for r in &spec.records {
            let mut x = r.x;
            spec.domain.wrap(&mut x);
            shares[decomp.rank_of(&x)].push(AtomRecord { x, ..*r });
        }

        let results: Vec<Result<RankOutcome, CommError>> = std::thread::scope(|scope| {
            let factory = &factory;
            let handles: Vec<_> = comms
                .into_iter()
                .zip(shares)
                .enumerate()
                .map(|(rank, (mut comm, share))| {
                    scope.spawn(move || -> Result<RankOutcome, CommError> {
                        // Everything this thread does nests under its rank
                        // region, so subscribers see per-rank buckets.
                        let _rank_region = profile::begin_region(format!("rank{rank}"));
                        if let Some(cfg) = &spec.fault {
                            comm.install_fault_plan(FaultPlan::new(cfg.clone()));
                        }
                        comm.set_balance(balance);
                        let outcome = (|| -> Result<RankOutcome, CommError> {
                            let atoms = AtomData::from_records(&share, &spec.masses);
                            let mut system = System::new(atoms, spec.domain, spec.space.clone())
                                .with_units(spec.units);
                            system.comm = Some(Box::new(comm));
                            let mut sim = factory(rank, system);
                            sim.try_run(spec.warmup_steps)?;
                            let comm_grow_warm = sim.comm_grow_count();
                            let neighbor_grow_warm = sim.neighbor_grow_count();
                            let scatter_grow_warm = sim.pair.scatter_grow_count();
                            sim.try_run(spec.steps)?;
                            let total_pairs = sim.neighbor_list().total_pairs;
                            sim.system.atoms.sync(&Space::Serial, Mask::ALL);
                            let states: Vec<RankAtomState> = {
                                let a = &sim.system.atoms;
                                let x = a.x.h_view();
                                let v = a.v.h_view();
                                let f = a.f.h_view();
                                let tag = a.tag.h_view();
                                let typ = a.typ.h_view();
                                (0..a.nlocal)
                                    .map(|i| RankAtomState {
                                        tag: tag.at([i]),
                                        typ: typ.at([i]),
                                        x: [x.at([i, 0]), x.at([i, 1]), x.at([i, 2])],
                                        v: [v.at([i, 0]), v.at([i, 1]), v.at([i, 2])],
                                        f: [f.at([i, 0]), f.at([i, 1]), f.at([i, 2])],
                                    })
                                    .collect()
                            };
                            let e_local = sim.last_results.energy;
                            let e_pair = sim
                                .system
                                .with_comm_taken(|_, c| c.allreduce_sum(e_local))?;
                            let ke_local =
                                compute::kinetic_energy(&sim.system.atoms, &sim.system.units);
                            let e_kinetic = sim
                                .system
                                .with_comm_taken(|_, c| c.allreduce_sum(ke_local))?;
                            // Final handshake: no peer may still be waiting
                            // on a retransmit when this rank drops its
                            // channel endpoints.
                            sim.system.with_comm_taken(|_, c| c.quiesce())?;
                            let nlocal = sim.system.atoms.nlocal;
                            let nlocal_peak = sim
                                .system
                                .comm
                                .as_ref()
                                .map_or(0, |c| c.max_owned())
                                .max(nlocal);
                            Ok(RankOutcome {
                                states,
                                e_pair,
                                e_kinetic,
                                thermo: sim.thermo.clone(),
                                stats: sim.comm_stats(),
                                comm_grow: sim.comm_grow_count(),
                                comm_grow_warm,
                                neighbor_grow: sim.neighbor_grow_count(),
                                neighbor_grow_warm,
                                scatter_grow: sim.pair.scatter_grow_count(),
                                scatter_grow_warm,
                                rebuild_count: sim.rebuild_count,
                                total_pairs,
                                timings: sim.timings,
                                nlocal,
                                nlocal_peak,
                                fstats: sim.comm_fault_stats(),
                            })
                        })();
                        if let Err(err) = &outcome {
                            if profile::has_subscribers() {
                                profile::note_instant("comm.fault.abort", err.rank() as f64);
                            }
                        }
                        outcome
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(res) => res,
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&'static str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".to_string());
                        Err(CommError::RankPanicked { rank, message })
                    }
                })
                .collect()
        });

        let errors: Vec<(usize, CommError)> = results
            .iter()
            .enumerate()
            .filter_map(|(r, res)| res.as_ref().err().map(|e| (r, e.clone())))
            .collect();
        if !errors.is_empty() {
            return Err(CommFailure { nranks, errors });
        }
        let outcomes: Vec<RankOutcome> = results.into_iter().map(|r| r.unwrap()).collect();

        let mut states: Vec<RankAtomState> = outcomes
            .iter()
            .flat_map(|o| o.states.iter().copied())
            .collect();
        states.sort_by_key(|s| s.tag);
        debug_assert_eq!(states.len(), natoms, "atoms lost or duplicated");
        let mut comm_stats = CommStats::default();
        let mut fault_stats = FaultStats::default();
        for o in &outcomes {
            comm_stats.add(&o.stats);
            fault_stats.add(&o.fstats);
        }
        Ok(MultiRankRun {
            nranks,
            natoms,
            steps: spec.steps,
            e_pair: outcomes[0].e_pair,
            e_kinetic: outcomes[0].e_kinetic,
            comm_stats,
            comm_grow: outcomes.iter().map(|o| o.comm_grow).sum(),
            comm_grow_after_warmup: outcomes
                .iter()
                .map(|o| o.comm_grow - o.comm_grow_warm)
                .sum(),
            neighbor_grow: outcomes.iter().map(|o| o.neighbor_grow).sum(),
            neighbor_grow_after_warmup: outcomes
                .iter()
                .map(|o| o.neighbor_grow - o.neighbor_grow_warm)
                .sum(),
            scatter_grow: outcomes.iter().map(|o| o.scatter_grow).sum(),
            scatter_grow_after_warmup: outcomes
                .iter()
                .map(|o| o.scatter_grow - o.scatter_grow_warm)
                .sum(),
            rebuild_counts: outcomes.iter().map(|o| o.rebuild_count).collect(),
            total_pairs: outcomes.iter().map(|o| o.total_pairs).sum(),
            owned_atoms: outcomes.iter().map(|o| o.nlocal).collect(),
            owned_atoms_peak: outcomes.iter().map(|o| o.nlocal_peak).collect(),
            timings: outcomes.iter().map(|o| o.timings).collect(),
            thermo: outcomes.into_iter().map(|o| o.thermo).collect(),
            states,
            fault_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::build_ghosts;

    #[test]
    fn bufpool_reaches_steady_state() {
        let mut pool = BufPool::new();
        let a = pool.acquire(10);
        assert!(a.capacity() >= 1024);
        pool.free.push(a);
        let after_first = pool.grow_count;
        for _ in 0..100 {
            let b = pool.acquire(500);
            pool.free.push(b);
        }
        assert_eq!(pool.grow_count, after_first, "pool grew in steady state");
    }

    #[test]
    fn record_pack_round_trips() {
        let r = AtomRecord {
            tag: -42,
            typ: 3,
            q: -0.7,
            x: [1.5, -2.5, 3.5],
            v: [0.1, -0.2, 0.3],
            image: [-1, 0, 2],
        };
        let mut buf = Vec::new();
        pack_record(&mut buf, &r);
        assert_eq!(buf.len(), MIGRATE_WORDS);
        assert_eq!(unpack_record(&buf), r);
    }

    #[test]
    fn single_brick_matches_single_rank_ghost_set() {
        // On a [1,1,1] grid every ghost is a periodic self image; the
        // (owner, shift) multiset must equal the single-rank builder's.
        let positions = [
            [0.5, 0.5, 0.5],
            [5.0, 5.0, 5.0],
            [9.5, 5.0, 0.3],
            [0.1, 9.9, 5.0],
        ];
        let domain = Domain::cubic(10.0);
        let mut reference = AtomData::from_positions(&positions);
        let ref_map = build_ghosts(&mut reference, &domain, 2.0);

        let decomp = BrickDecomp::new(domain, 1);
        let mut comms = BrickComm::create_all(&decomp);
        let mut comm = comms.pop().unwrap();
        let atoms = AtomData::from_positions(&positions);
        let mut system = System::new(atoms, domain, Space::Serial);
        comm.borders(&mut system, 2.0).unwrap();

        assert_eq!(system.ghosts.nghost(), ref_map.nghost());
        let key = |o: usize, s: [f64; 3]| (o, s.map(|v| v.to_bits()));
        let mut a: Vec<_> = ref_map
            .owner
            .iter()
            .zip(&ref_map.shift)
            .map(|(&o, &s)| key(o, s))
            .collect();
        let mut b: Vec<_> = system
            .ghosts
            .owner
            .iter()
            .zip(&system.ghosts.shift)
            .map(|(&o, &s)| key(o, s))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(
            comm.stats(),
            CommStats::default(),
            "1-rank comm sent messages"
        );
    }

    #[test]
    fn two_rank_exchange_and_collectives() {
        // Grid [1,1,2]: rank 0 owns z in [0,5), rank 1 owns z in [5,10).
        let domain = Domain::cubic(10.0);
        let decomp = BrickDecomp::new(domain, 2);
        assert_eq!(decomp.grid, [1, 1, 2]);
        let comms = BrickComm::create_all(&decomp);
        let shares = [vec![[5.0, 5.0, 4.9]], vec![[5.0, 5.0, 5.1]]];
        let results: Vec<(usize, f64, [f64; 3])> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .zip(shares)
                .enumerate()
                .map(|(rank, (mut comm, share))| {
                    scope.spawn(move || {
                        let atoms = AtomData::from_positions(&share);
                        let mut system = System::new(atoms, domain, Space::Serial);
                        comm.borders(&mut system, 1.0).unwrap();
                        // One remote ghost from the facing rank, no wrap.
                        assert_eq!(system.atoms.nlocal, 1);
                        assert_eq!(system.atoms.nghost, 1);
                        assert_eq!(system.ghosts.nghost(), 0, "no self images expected");
                        let ghost_z = system.atoms.pos(1)[2];
                        // Owner moves; forward refreshes the peer's ghost.
                        let dz = if rank == 0 { -0.05 } else { 0.05 };
                        {
                            let xh = system.atoms.x.h_view_mut();
                            let z = xh.at([0, 2]) + dz;
                            xh.set([0, 2], z);
                        }
                        comm.forward(&mut system).unwrap();
                        let ghost_z_after = system.atoms.pos(1)[2];
                        // Put a force on the ghost; reverse folds it to
                        // the owner on the other rank.
                        {
                            let fh = system.atoms.f.h_view_mut();
                            fh.set([1, 0], 1.0 + rank as f64);
                        }
                        comm.reverse(&mut system).unwrap();
                        let own_force = system.atoms.f.h_view().at([0, 0]);
                        // Scalar forwarding and the collectives.
                        let mut vals = vec![0.0; system.atoms.nall()];
                        vals[0] = 10.0 * (rank + 1) as f64;
                        comm.forward_scalar(&mut system, &mut vals).unwrap();
                        let ghost_scalar = vals[1];
                        assert!(comm.allreduce_or(rank == 1).unwrap());
                        assert!(!comm.allreduce_or(false).unwrap());
                        let sum = comm.allreduce_sum(0.5 + rank as f64).unwrap();
                        (
                            rank,
                            sum,
                            [ghost_z, ghost_z_after, own_force + ghost_scalar],
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, sum, [gz, gz_after, combined]) in results {
            assert_eq!(sum, 2.0, "rank {rank} reduced sum");
            if rank == 0 {
                assert!((gz - 5.1).abs() < 1e-12);
                assert!((gz_after - 5.15).abs() < 1e-12);
                // Peer (rank 1) put force 2.0 on our ghosted atom and
                // reverse delivered it; its scalar 20.0 arrived on our
                // ghost row.
                assert_eq!(combined, 2.0 + 20.0);
            } else {
                assert!((gz - 4.9).abs() < 1e-12);
                assert!((gz_after - 4.85).abs() < 1e-12);
                assert_eq!(combined, 1.0 + 10.0);
            }
        }
    }

    #[test]
    fn periodic_wrap_ghosts_cross_the_box() {
        // Two ranks, atoms near the *outer* z faces: ghosts must arrive
        // shifted by ±L so minimum-image pairs see them adjacent.
        let domain = Domain::cubic(10.0);
        let decomp = BrickDecomp::new(domain, 2);
        let comms = BrickComm::create_all(&decomp);
        let shares = [vec![[5.0, 5.0, 0.2]], vec![[5.0, 5.0, 9.8]]];
        let ghost_zs: Vec<(usize, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .zip(shares)
                .enumerate()
                .map(|(rank, (mut comm, share))| {
                    scope.spawn(move || {
                        let atoms = AtomData::from_positions(&share);
                        let mut system = System::new(atoms, domain, Space::Serial);
                        comm.borders(&mut system, 1.0).unwrap();
                        assert_eq!(system.atoms.nghost, 1);
                        (rank, system.atoms.pos(1)[2])
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, gz) in ghost_zs {
            if rank == 0 {
                // Rank 1's atom at 9.8, wrapped below our brick: -0.2.
                assert!((gz - (-0.2)).abs() < 1e-12, "rank 0 ghost z = {gz}");
            } else {
                assert!((gz - 10.2).abs() < 1e-12, "rank 1 ghost z = {gz}");
            }
        }
    }

    #[test]
    fn migration_moves_atoms_to_their_brick() {
        let domain = Domain::cubic(10.0);
        let decomp = BrickDecomp::new(domain, 2);
        let comms = BrickComm::create_all(&decomp);
        // Rank 0 starts holding an atom that belongs to rank 1 (z=7)
        // and one of its own; rank 1 holds one atom drifted out of the
        // box (z=11.5 wraps to 1.5 → rank 0).
        let shares = [
            vec![[2.0, 2.0, 2.0], [2.0, 2.0, 7.0]],
            vec![[8.0, 8.0, 11.5]],
        ];
        let finals: Vec<(usize, usize, Vec<i64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .zip(shares)
                .enumerate()
                .map(|(rank, (mut comm, share))| {
                    scope.spawn(move || {
                        let atoms = AtomData::from_positions(&share);
                        let mut system = System::new(atoms, domain, Space::Serial);
                        comm.borders(&mut system, 1.0).unwrap();
                        let tags = (0..system.atoms.nlocal)
                            .map(|i| system.atoms.tag.h_view().at([i]))
                            .collect();
                        (rank, system.atoms.nlocal, tags, comm.stats().migrate_msgs)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Tags are per-rank sequential here (1, 2 on rank 0; 1 on rank
        // 1): rank 0 keeps its tag-1 atom and receives rank 1's wrapped
        // one (also tag 1); rank 1 receives rank 0's tag-2 atom.
        for (rank, nlocal, tags, migrate_msgs) in finals {
            assert!(migrate_msgs > 0, "rank {rank} migrated nothing");
            if rank == 0 {
                assert_eq!(nlocal, 2, "rank 0 should own its atom + the wrapped one");
                assert_eq!(tags, vec![1, 1]);
            } else {
                assert_eq!(nlocal, 1);
                assert_eq!(tags, vec![2]);
            }
        }
    }
}
