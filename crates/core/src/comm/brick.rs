//! Simulated-MPI brick communication: ranks as threads, typed messages
//! over per-edge channels.
//!
//! [`BrickComm`] is the multi-rank [`Comm`] implementation behind the
//! brick domain decomposition of [`crate::decomp::BrickDecomp`]. Each
//! rank runs on its own OS thread and owns one brick of the global box;
//! exchanges move through unbounded `std::sync::mpsc` channels, one
//! data + one buffer-recycle channel per directed rank pair. Because
//! sends never block and every phase is bulk-synchronous (all ranks
//! send to all peers, then receive in ascending rank order), the
//! exchange sequence is deadlock-free without barriers or any global
//! lock.
//!
//! The halo construction is O(surface), not O(N): owned atoms are
//! binned over the sub-domain at `cutghost` granularity and only the
//! outermost bin shell is scanned against the 26 face/edge/corner
//! directions of the brick (each with its periodic wrap shift). Border
//! messages carry the shift once; per-step forward messages then carry
//! raw owner position bits, and the receiver adds its stored shift —
//! the exact arithmetic of the single-rank ghost path, so a decomposed
//! run reproduces the single-rank trajectory to float accumulation
//! order (see `tests/rank_equivalence.rs`).
//!
//! Message buffers live in a per-rank [`BufPool`]; receivers return
//! drained buffers through the recycle channel, so steady-state
//! exchanges allocate nothing (`Comm::grow_count` asserts this — the
//! same invariant the neighbor-list and scatter pools keep, see
//! `docs/performance.md`).

use crate::atom::{AtomData, AtomRecord, Mask};
use crate::comm::{Comm, CommStats};
use crate::compute;
use crate::decomp::BrickDecomp;
use crate::domain::Domain;
use crate::neighbor::Bins;
use crate::sim::{Simulation, System, ThermoRow, Timings};
use crate::units::Units;
use lkk_kokkos::{profile, Space};
use std::sync::mpsc::{channel, Receiver, Sender};

// Phase tags (word 0 of every message) catch sequence mismatches in
// debug builds: a desynced collective shows up as a tag assert, not as
// silently corrupt positions.
const TAG_MIGRATE: u64 = 1;
const TAG_BORDER: u64 = 2;
const TAG_FORWARD: u64 = 3;
const TAG_REVERSE: u64 = 4;
const TAG_SCALAR: u64 = 5;
const TAG_REDUCE: u64 = 6;

/// Words per atom in a migration message (tag, type, q, x, v, image).
const MIGRATE_WORDS: usize = 12;
/// Words per atom in a border message (tag, type, q, x, shift).
const BORDER_WORDS: usize = 9;

/// The channel endpoints one rank holds toward one peer.
struct Link {
    /// Data to the peer.
    tx: Sender<Vec<u64>>,
    /// Data from the peer.
    rx: Receiver<Vec<u64>>,
    /// Returns the peer's drained buffers to its pool.
    recycle_tx: Sender<Vec<u64>>,
    /// This rank's buffers coming back from the peer.
    recycle_rx: Receiver<Vec<u64>>,
    /// Buffers sent to the peer and not yet reclaimed. Reclaim waits
    /// for exactly this many, which makes the pool's contents — and
    /// therefore its `grow_count` — independent of thread timing.
    owed: std::cell::Cell<usize>,
}

/// Persistent send-buffer pool. Buffers drain back through the recycle
/// channels; `grow_count` ticks only when a fresh allocation (or an
/// in-place capacity growth) was unavoidable, so steady state holds it
/// constant.
struct BufPool {
    free: Vec<Vec<u64>>,
    grow_count: u64,
}

impl BufPool {
    fn new() -> BufPool {
        BufPool {
            free: Vec::new(),
            grow_count: 0,
        }
    }

    /// An empty buffer with room for `need` words: the tightest-fitting
    /// free buffer, or a fresh allocation when none fits. Capacities
    /// are rounded up to a power of two (min 1024 words) so small
    /// fluctuations in exchange sizes land in the same size class, and
    /// best-fit pairing keeps large buffers available for large
    /// requests instead of churning.
    fn acquire(&mut self, need: usize) -> Vec<u64> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= need
                && best.is_none_or(|j: usize| buf.capacity() < self.free[j].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf
            }
            None => {
                // 2x headroom: exchange sizes fluctuate a few percent
                // step to step, and a fresh class must absorb that
                // without another growth (the steady-state assert).
                self.grow_count += 1;
                if profile::has_subscribers() {
                    profile::note_instant("pool_grow", need as f64);
                }
                Vec::with_capacity((need * 2).max(1024).next_power_of_two())
            }
        }
    }
}

/// Multi-rank brick [`Comm`]: one instance per rank, created together
/// by [`BrickComm::create_all`] so the channel mesh is fully connected.
pub struct BrickComm {
    decomp: BrickDecomp,
    rank: usize,
    /// This rank's grid coordinates.
    coords: [usize; 3],
    /// This rank's brick of the global box.
    sub: Domain,
    /// `links[p]` is `Some` for every peer `p != rank`.
    links: Vec<Option<Link>>,
    pool: BufPool,
    /// Per peer: owned rows sent as ghosts, in border-pack order.
    send_plan: Vec<Vec<u32>>,
    /// Per peer: periodic shift of each planned ghost (sent once in the
    /// border message; per-step forwards carry raw owner bits).
    send_shift: Vec<Vec<[f64; 3]>>,
    /// Per peer: ghost rows received from it in the last border build.
    recv_count: Vec<usize>,
    /// Periodic shift of each remote ghost row, segment-concatenated in
    /// ascending peer order; applied on every forward.
    recv_shift: Vec<[f64; 3]>,
    /// First remote ghost row (`nlocal + self-image count`).
    remote_base: usize,
    /// Sub-domain bins for the O(surface) boundary-shell halo search.
    bins: Bins,
    boundary: Vec<u32>,
    /// Migration scratch: surviving + immigrating atom records.
    records: Vec<AtomRecord>,
    /// Migration scratch: destination rank per owned atom.
    dest: Vec<usize>,
    /// Received border buffers pending unpack (held so the ghost count
    /// is known before the one resize).
    inbox: Vec<(usize, Vec<u64>)>,
    /// Packed outbound buffers pending send (per exchange phase; lets
    /// the pack and send sub-phases trace as distinct spans without a
    /// per-call allocation).
    outbox: Vec<(usize, Vec<u64>)>,
    stats: CommStats,
    halo_seconds: f64,
    migrate_seconds: f64,
}

impl BrickComm {
    /// Build the fully connected set of rank comms for `decomp`, in
    /// rank order. Each element goes to its rank's thread (they are
    /// `Send`, not `Sync`).
    pub fn create_all(decomp: &BrickDecomp) -> Vec<BrickComm> {
        let n = decomp.nranks();
        let mut data_tx: Vec<Vec<Option<Sender<Vec<u64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut data_rx: Vec<Vec<Option<Receiver<Vec<u64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rec_tx: Vec<Vec<Option<Sender<Vec<u64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut rec_rx: Vec<Vec<Option<Receiver<Vec<u64>>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                // Data a → b; its buffers recycle b → a.
                let (tx, rx) = channel();
                data_tx[a][b] = Some(tx);
                data_rx[b][a] = Some(rx);
                let (tx, rx) = channel();
                rec_tx[b][a] = Some(tx);
                rec_rx[a][b] = Some(rx);
            }
        }
        (0..n)
            .map(|rank| {
                let links = (0..n)
                    .map(|p| {
                        if p == rank {
                            None
                        } else {
                            Some(Link {
                                tx: data_tx[rank][p].take().unwrap(),
                                rx: data_rx[rank][p].take().unwrap(),
                                recycle_tx: rec_tx[rank][p].take().unwrap(),
                                recycle_rx: rec_rx[rank][p].take().unwrap(),
                                owed: std::cell::Cell::new(0),
                            })
                        }
                    })
                    .collect();
                let [_, py, pz] = decomp.grid;
                let coords = [rank / (py * pz), (rank / pz) % py, rank % pz];
                BrickComm {
                    decomp: decomp.clone(),
                    rank,
                    coords,
                    sub: decomp.subdomain(rank),
                    links,
                    pool: BufPool::new(),
                    send_plan: (0..n).map(|_| Vec::new()).collect(),
                    send_shift: (0..n).map(|_| Vec::new()).collect(),
                    recv_count: vec![0; n],
                    recv_shift: Vec::new(),
                    remote_base: 0,
                    bins: Bins::empty(),
                    boundary: Vec::new(),
                    records: Vec::new(),
                    dest: Vec::new(),
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                    stats: CommStats::default(),
                    halo_seconds: 0.0,
                    migrate_seconds: 0.0,
                }
            })
            .collect()
    }

    /// Pull every outstanding buffer back into the pool, waiting for
    /// the exact count owed per peer. Waiting is deadlock-free: a peer
    /// recycles while draining its receives for the *previous* phase,
    /// which it must finish before it can participate in the phase this
    /// reclaim precedes — so every owed buffer is already in flight.
    fn reclaim(&mut self) {
        // The `reclaim` span on a trace timeline is this rank *blocked*
        // on peers that have not yet drained the previous phase — the
        // simulated-MPI analogue of wait time in MPI_Send completion.
        let _span = profile::has_subscribers().then(|| profile::begin_region("reclaim"));
        for link in self.links.iter().flatten() {
            for _ in 0..link.owed.get() {
                let buf = link
                    .recycle_rx
                    .recv()
                    .expect("peer rank terminated without recycling");
                self.pool.free.push(buf);
            }
            link.owed.set(0);
        }
    }

    fn send_to(&self, peer: usize, buf: Vec<u64>) {
        let link = self.links[peer].as_ref().unwrap();
        link.owed.set(link.owed.get() + 1);
        link.tx
            .send(buf)
            .expect("peer rank terminated mid-exchange");
    }

    fn recv_from(&self, peer: usize, tag: u64) -> Vec<u64> {
        let buf = self.links[peer]
            .as_ref()
            .unwrap()
            .rx
            .recv()
            .expect("peer rank terminated mid-exchange");
        debug_assert_eq!(buf[0], tag, "exchange sequence desynced");
        buf
    }

    fn recycle(&self, peer: usize, buf: Vec<u64>) {
        // The peer may already be shutting down at gather time; its
        // pool dying with it is fine.
        let _ = self.links[peer].as_ref().unwrap().recycle_tx.send(buf);
    }

    /// Migrate owned atoms whose wrapped position now falls in another
    /// rank's brick. Rows are rebuilt as [survivors][immigrants in
    /// ascending peer order]; forces and style scratch are recomputed
    /// after the rebuild and are not carried.
    fn migrate(&mut self, system: &mut System) {
        let nranks = self.decomp.nranks();
        let nlocal = system.atoms.nlocal;
        self.dest.clear();
        for i in 0..nlocal {
            self.dest.push(self.decomp.rank_of(&system.atoms.pos(i)));
        }
        self.records.clear();
        for i in 0..nlocal {
            if self.dest[i] == self.rank {
                self.records.push(system.atoms.record(i));
            }
        }
        let traced = profile::has_subscribers();
        self.reclaim();
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let leavers = self.dest.iter().filter(|&&d| d == p).count();
                let mut buf = self.pool.acquire(1 + leavers * MIGRATE_WORDS);
                buf.push(TAG_MIGRATE);
                for i in 0..nlocal {
                    if self.dest[i] == p {
                        pack_record(&mut buf, &system.atoms.record(i));
                    }
                }
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > 1 {
                    self.stats.migrate_msgs += 1;
                    let bytes = ((buf.len() - 1) * 8) as u64;
                    self.stats.migrate_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("migrate_bytes->r{p}"), bytes as f64);
                    }
                }
                self.send_to(p, buf);
            }
            self.outbox = outbox;
        }
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = {
                let _span = traced.then(|| profile::begin_region("recv"));
                self.recv_from(p, TAG_MIGRATE)
            };
            debug_assert_eq!((buf.len() - 1) % MIGRATE_WORDS, 0);
            let _span = traced.then(|| profile::begin_region("unpack"));
            let mut k = 1;
            while k < buf.len() {
                let r = unpack_record(&buf[k..k + MIGRATE_WORDS]);
                debug_assert_eq!(
                    self.decomp.rank_of(&r.x),
                    self.rank,
                    "migrated atom landed on the wrong rank"
                );
                self.records.push(r);
                k += MIGRATE_WORDS;
            }
            drop(_span);
            self.recycle(p, buf);
        }
        // Rebuild the owned rows from the record list.
        let new_n = self.records.len();
        system.atoms.resize_all(new_n, 0);
        system.atoms.nlocal = new_n;
        system.atoms.nghost = 0;
        {
            let xh = system.atoms.x.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                for (k, &v) in r.x.iter().enumerate() {
                    xh.set([i, k], v);
                }
            }
        }
        {
            let vh = system.atoms.v.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                for (k, &v) in r.v.iter().enumerate() {
                    vh.set([i, k], v);
                }
            }
        }
        {
            let th = system.atoms.tag.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                th.set([i], r.tag);
            }
        }
        {
            let ty = system.atoms.typ.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                ty.set([i], r.typ);
            }
        }
        {
            let qh = system.atoms.q.h_view_mut();
            for (i, r) in self.records.iter().enumerate() {
                qh.set([i], r.q);
            }
        }
        system.atoms.image.clear();
        system
            .atoms
            .image
            .extend(self.records.iter().map(|r| r.image));
    }

    /// Build the ghost layer: rows become [locals][periodic self
    /// images][remote segments in ascending peer order]. Candidates
    /// come from the boundary bin shell; each candidate is tested
    /// against the 26 neighbor-brick directions, whose periodic wraps
    /// determine the shift transmitted with the border message.
    fn halo(&mut self, system: &mut System, cutghost: f64) {
        let nranks = self.decomp.nranks();
        let l = system.domain.lengths();
        for (k, &len) in l.iter().enumerate() {
            if self.decomp.grid[k] == 1 {
                // Same minimum-image bound the single-rank build asserts.
                assert!(
                    len >= 2.0 * cutghost,
                    "box length {len} in dim {k} smaller than 2*cutghost = {}",
                    2.0 * cutghost
                );
            } else {
                assert!(
                    self.sub.hi[k] - self.sub.lo[k] >= cutghost,
                    "sub-domain narrower than cutghost {cutghost} in dim {k}; use fewer ranks"
                );
            }
        }
        // Bin owned atoms (no ghost rows exist here) over the
        // sub-domain; the outermost bin layer covers everything within
        // `cutghost` of a face.
        self.bins.rebuild(&system.atoms, &self.sub, cutghost, 0.0);
        self.bins.boundary_atoms(&mut self.boundary);

        let mut self_map = std::mem::take(&mut system.ghosts);
        self_map.owner.clear();
        self_map.shift.clear();
        self_map.cutghost = cutghost;
        for plan in &mut self.send_plan {
            plan.clear();
        }
        for shifts in &mut self.send_shift {
            shifts.clear();
        }
        let grid = self.decomp.grid;
        let [py, pz] = [grid[1], grid[2]];
        for &ai in &self.boundary {
            let i = ai as usize;
            let x = system.atoms.pos(i);
            for dx in -1i32..=1 {
                for dy in -1i32..=1 {
                    for dz in -1i32..=1 {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let d = [dx, dy, dz];
                        let mut near = true;
                        let mut c = [0usize; 3];
                        let mut shift = [0.0f64; 3];
                        for k in 0..3 {
                            match d[k] {
                                1 => {
                                    near &= x[k] >= self.sub.hi[k] - cutghost;
                                    let up = self.coords[k] + 1;
                                    if up == grid[k] {
                                        c[k] = 0;
                                        shift[k] = -l[k];
                                    } else {
                                        c[k] = up;
                                    }
                                }
                                -1 => {
                                    near &= x[k] < self.sub.lo[k] + cutghost;
                                    if self.coords[k] == 0 {
                                        c[k] = grid[k] - 1;
                                        shift[k] = l[k];
                                    } else {
                                        c[k] = self.coords[k] - 1;
                                    }
                                }
                                _ => c[k] = self.coords[k],
                            }
                            if !near {
                                break;
                            }
                        }
                        if !near {
                            continue;
                        }
                        let target = (c[0] * py + c[1]) * pz + c[2];
                        if target == self.rank {
                            // A periodic image of our own atom (every
                            // non-zero direction wrapped).
                            self_map.owner.push(i);
                            self_map.shift.push(shift);
                        } else {
                            self.send_plan[target].push(ai);
                            self.send_shift[target].push(shift);
                        }
                    }
                }
            }
        }

        // Exchange border messages: identity + position + shift once;
        // subsequent forwards reference the same ordering implicitly.
        let traced = profile::has_subscribers();
        self.reclaim();
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let mut buf = self
                    .pool
                    .acquire(1 + self.send_plan[p].len() * BORDER_WORDS);
                buf.push(TAG_BORDER);
                {
                    let xh = system.atoms.x.h_view();
                    let tagh = system.atoms.tag.h_view();
                    let typh = system.atoms.typ.h_view();
                    let qh = system.atoms.q.h_view();
                    for (&ai, s) in self.send_plan[p].iter().zip(&self.send_shift[p]) {
                        let i = ai as usize;
                        buf.push(tagh.at([i]) as u64);
                        buf.push(typh.at([i]) as i64 as u64);
                        buf.push(qh.at([i]).to_bits());
                        for k in 0..3 {
                            buf.push(xh.at([i, k]).to_bits());
                        }
                        for &sk in s {
                            buf.push(sk.to_bits());
                        }
                    }
                }
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > 1 {
                    self.stats.border_msgs += 1;
                    let bytes = ((buf.len() - 1) * 8) as u64;
                    self.stats.border_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("border_bytes->r{p}"), bytes as f64);
                    }
                }
                self.send_to(p, buf);
            }
            self.outbox = outbox;
        }
        self.inbox.clear();
        let mut nremote = 0usize;
        {
            let _span = traced.then(|| profile::begin_region("recv"));
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let buf = self.recv_from(p, TAG_BORDER);
                debug_assert_eq!((buf.len() - 1) % BORDER_WORDS, 0);
                let count = (buf.len() - 1) / BORDER_WORDS;
                self.recv_count[p] = count;
                nremote += count;
                self.inbox.push((p, buf));
            }
        }
        let _unpack_span = traced.then(|| profile::begin_region("unpack"));

        let nlocal = system.atoms.nlocal;
        let nself = self_map.nghost();
        system.atoms.resize_all(nlocal + nself + nremote, nlocal);
        system.atoms.nghost = nself + nremote;
        self.remote_base = nlocal + nself;

        // Self images: metadata from the owner rows, then positions.
        {
            let typh = system.atoms.typ.h_view_mut();
            for (g, &o) in self_map.owner.iter().enumerate() {
                let v = typh.at([o]);
                typh.set([nlocal + g], v);
            }
        }
        {
            let qh = system.atoms.q.h_view_mut();
            for (g, &o) in self_map.owner.iter().enumerate() {
                let v = qh.at([o]);
                qh.set([nlocal + g], v);
            }
        }
        {
            let tagh = system.atoms.tag.h_view_mut();
            for (g, &o) in self_map.owner.iter().enumerate() {
                let v = tagh.at([o]);
                tagh.set([nlocal + g], v);
            }
        }
        crate::comm::forward_positions(&mut system.atoms, &self_map);

        // Remote segments, ascending peer order.
        self.recv_shift.clear();
        let mut row = self.remote_base;
        let mut inbox = std::mem::take(&mut self.inbox);
        for (p, buf) in inbox.drain(..) {
            let count = (buf.len() - 1) / BORDER_WORDS;
            let mut k = 1;
            for _ in 0..count {
                let tag = buf[k] as i64;
                let typ = buf[k + 1] as i64 as i32;
                let q = f64::from_bits(buf[k + 2]);
                let mut shift = [0.0f64; 3];
                for (kk, s) in shift.iter_mut().enumerate() {
                    *s = f64::from_bits(buf[k + 6 + kk]);
                }
                {
                    let xh = system.atoms.x.h_view_mut();
                    for kk in 0..3 {
                        xh.set([row, kk], f64::from_bits(buf[k + 3 + kk]) + shift[kk]);
                    }
                }
                system.atoms.tag.h_view_mut().set([row], tag);
                system.atoms.typ.h_view_mut().set([row], typ);
                system.atoms.q.h_view_mut().set([row], q);
                self.recv_shift.push(shift);
                row += 1;
                k += BORDER_WORDS;
            }
            self.recycle(p, buf);
        }
        self.inbox = inbox;
        system.ghosts = self_map;
    }
}

impl Comm for BrickComm {
    fn name(&self) -> &'static str {
        "brick"
    }

    fn nranks(&self) -> usize {
        self.decomp.nranks()
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn borders(&mut self, system: &mut System, cutghost: f64) {
        // Migration repacks every per-atom field, so everything must be
        // host-fresh (the caller guarantees only positions).
        system.atoms.sync(&Space::Serial, Mask::ALL);
        system.atoms.nghost = 0;
        system.atoms.wrap_positions(&system.domain);
        {
            let region = profile::begin_region("migrate");
            self.migrate(system);
            self.migrate_seconds += region.finish();
        }
        {
            let region = profile::begin_region("halo");
            self.halo(system, cutghost);
            self.halo_seconds += region.finish();
        }
    }

    fn forward(&mut self, system: &mut System) {
        crate::comm::forward_positions(&mut system.atoms, &system.ghosts);
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return;
        }
        let traced = profile::has_subscribers();
        self.reclaim();
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let mut buf = self.pool.acquire(1 + self.send_plan[p].len() * 3);
                buf.push(TAG_FORWARD);
                {
                    let xh = system.atoms.x.h_view();
                    for &ai in &self.send_plan[p] {
                        let i = ai as usize;
                        for k in 0..3 {
                            buf.push(xh.at([i, k]).to_bits());
                        }
                    }
                }
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > 1 {
                    self.stats.forward_msgs += 1;
                    let bytes = ((buf.len() - 1) * 8) as u64;
                    self.stats.forward_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("fwd_bytes->r{p}"), bytes as f64);
                    }
                }
                self.send_to(p, buf);
            }
            self.outbox = outbox;
        }
        let mut row = self.remote_base;
        let mut gi = 0usize;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = {
                let _span = traced.then(|| profile::begin_region("recv"));
                self.recv_from(p, TAG_FORWARD)
            };
            debug_assert_eq!(buf.len() - 1, self.recv_count[p] * 3);
            {
                let _span = traced.then(|| profile::begin_region("unpack"));
                let xh = system.atoms.x.h_view_mut();
                for c in 0..self.recv_count[p] {
                    let s = self.recv_shift[gi];
                    for (k, &sk) in s.iter().enumerate() {
                        xh.set([row, k], f64::from_bits(buf[1 + c * 3 + k]) + sk);
                    }
                    row += 1;
                    gi += 1;
                }
            }
            self.recycle(p, buf);
        }
    }

    fn reverse(&mut self, system: &mut System) {
        // Fold periodic self images first (single-rank ordering), then
        // remote contributions in ascending peer order — deterministic
        // on every rank.
        crate::comm::reverse_forces(&mut system.atoms, &system.ghosts);
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return;
        }
        let traced = profile::has_subscribers();
        self.reclaim();
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            let mut row = self.remote_base;
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let count = self.recv_count[p];
                let mut buf = self.pool.acquire(1 + count * 3);
                buf.push(TAG_REVERSE);
                {
                    let fh = system.atoms.f.h_view_mut();
                    for c in 0..count {
                        for k in 0..3 {
                            buf.push(fh.at([row + c, k]).to_bits());
                            fh.set([row + c, k], 0.0);
                        }
                    }
                }
                row += count;
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > 1 {
                    self.stats.reverse_msgs += 1;
                    let bytes = ((buf.len() - 1) * 8) as u64;
                    self.stats.reverse_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("rev_bytes->r{p}"), bytes as f64);
                    }
                }
                self.send_to(p, buf);
            }
            self.outbox = outbox;
        }
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = {
                let _span = traced.then(|| profile::begin_region("recv"));
                self.recv_from(p, TAG_REVERSE)
            };
            debug_assert_eq!(buf.len() - 1, self.send_plan[p].len() * 3);
            {
                let _span = traced.then(|| profile::begin_region("unpack"));
                let fh = system.atoms.f.h_view_mut();
                for (c, &ai) in self.send_plan[p].iter().enumerate() {
                    let i = ai as usize;
                    for k in 0..3 {
                        let v = fh.at([i, k]) + f64::from_bits(buf[1 + c * 3 + k]);
                        fh.set([i, k], v);
                    }
                }
            }
            self.recycle(p, buf);
        }
    }

    fn forward_scalar(&mut self, system: &mut System, values: &mut [f64]) {
        let nlocal = system.atoms.nlocal;
        for (g, &owner) in system.ghosts.owner.iter().enumerate() {
            values[nlocal + g] = values[owner];
        }
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return;
        }
        let traced = profile::has_subscribers();
        self.reclaim();
        {
            let _span = traced.then(|| profile::begin_region("pack"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for p in 0..nranks {
                if p == self.rank {
                    continue;
                }
                let mut buf = self.pool.acquire(1 + self.send_plan[p].len());
                buf.push(TAG_SCALAR);
                for &ai in &self.send_plan[p] {
                    buf.push(values[ai as usize].to_bits());
                }
                outbox.push((p, buf));
            }
            self.outbox = outbox;
        }
        {
            let _span = traced.then(|| profile::begin_region("send"));
            let mut outbox = std::mem::take(&mut self.outbox);
            for (p, buf) in outbox.drain(..) {
                if buf.len() > 1 {
                    self.stats.scalar_msgs += 1;
                    let bytes = ((buf.len() - 1) * 8) as u64;
                    self.stats.scalar_bytes += bytes;
                    if traced {
                        profile::note_instant(&format!("scalar_bytes->r{p}"), bytes as f64);
                    }
                }
                self.send_to(p, buf);
            }
            self.outbox = outbox;
        }
        let mut row = self.remote_base;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = {
                let _span = traced.then(|| profile::begin_region("recv"));
                self.recv_from(p, TAG_SCALAR)
            };
            debug_assert_eq!(buf.len() - 1, self.recv_count[p]);
            {
                let _span = traced.then(|| profile::begin_region("unpack"));
                for &w in &buf[1..] {
                    values[row] = f64::from_bits(w);
                    row += 1;
                }
            }
            self.recycle(p, buf);
        }
    }

    fn allreduce_or(&mut self, flag: bool) -> bool {
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return flag;
        }
        self.stats.allreduce_count += 1;
        self.reclaim();
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let mut buf = self.pool.acquire(2);
            buf.push(TAG_REDUCE);
            buf.push(flag as u64);
            self.send_to(p, buf);
        }
        let mut acc = flag;
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let buf = self.recv_from(p, TAG_REDUCE);
            acc |= buf[1] != 0;
            self.recycle(p, buf);
        }
        acc
    }

    fn allreduce_sum(&mut self, value: f64) -> f64 {
        let nranks = self.decomp.nranks();
        if nranks == 1 {
            return value;
        }
        self.stats.allreduce_count += 1;
        self.reclaim();
        for p in 0..nranks {
            if p == self.rank {
                continue;
            }
            let mut buf = self.pool.acquire(2);
            buf.push(TAG_REDUCE);
            buf.push(value.to_bits());
            self.send_to(p, buf);
        }
        // Combine in ascending rank order (own term in place), so every
        // rank computes the bitwise-identical sum.
        let mut acc = 0.0;
        for p in 0..nranks {
            if p == self.rank {
                acc += value;
            } else {
                let buf = self.recv_from(p, TAG_REDUCE);
                acc += f64::from_bits(buf[1]);
                self.recycle(p, buf);
            }
        }
        acc
    }

    fn stats(&self) -> CommStats {
        self.stats
    }

    fn grow_count(&self) -> u64 {
        self.pool.grow_count
    }

    fn phase_seconds(&self) -> [f64; 2] {
        [self.halo_seconds, self.migrate_seconds]
    }
}

fn pack_record(buf: &mut Vec<u64>, r: &AtomRecord) {
    buf.push(r.tag as u64);
    buf.push(r.typ as i64 as u64);
    buf.push(r.q.to_bits());
    for &v in &r.x {
        buf.push(v.to_bits());
    }
    for &v in &r.v {
        buf.push(v.to_bits());
    }
    for &v in &r.image {
        buf.push(v as i64 as u64);
    }
}

fn unpack_record(words: &[u64]) -> AtomRecord {
    AtomRecord {
        tag: words[0] as i64,
        typ: words[1] as i64 as i32,
        q: f64::from_bits(words[2]),
        x: [
            f64::from_bits(words[3]),
            f64::from_bits(words[4]),
            f64::from_bits(words[5]),
        ],
        v: [
            f64::from_bits(words[6]),
            f64::from_bits(words[7]),
            f64::from_bits(words[8]),
        ],
        image: [
            words[9] as i64 as i32,
            words[10] as i64 as i32,
            words[11] as i64 as i32,
        ],
    }
}

// ---------------------------------------------------------------------
// Rank-parallel driver
// ---------------------------------------------------------------------

/// Everything a rank-parallel run needs besides the per-rank styles:
/// the initial atoms (as records), the global box, and the step counts.
#[derive(Debug, Clone)]
pub struct RankParallelSpec {
    pub records: Vec<AtomRecord>,
    /// Per-type mass table (global, not part of the records).
    pub masses: Vec<f64>,
    pub domain: Domain,
    pub units: Units,
    pub space: Space,
    /// Steps run before the grow counters are snapshotted (pool sizes
    /// may still grow while the system equilibrates).
    pub warmup_steps: u64,
    /// Measured steps after warmup.
    pub steps: u64,
}

impl RankParallelSpec {
    /// Capture `atoms` as the initial condition (LJ units, serial
    /// space, no warmup by default — set the public fields to change).
    pub fn new(atoms: &AtomData, domain: Domain, steps: u64) -> Self {
        RankParallelSpec {
            records: (0..atoms.nlocal).map(|i| atoms.record(i)).collect(),
            masses: atoms.mass.clone(),
            domain,
            units: Units::lj(),
            space: Space::Serial,
            warmup_steps: 0,
            steps,
        }
    }
}

/// Final state of one atom of a rank-parallel run, gathered and keyed
/// by global tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankAtomState {
    pub tag: i64,
    pub typ: i32,
    pub x: [f64; 3],
    pub v: [f64; 3],
    pub f: [f64; 3],
}

/// Gathered result of [`run_rank_parallel`]: final atom states plus the
/// reduced energies and the per-rank diagnostics the perf harness and
/// the equivalence tests assert on.
#[derive(Debug, Clone)]
pub struct MultiRankRun {
    pub nranks: usize,
    pub natoms: usize,
    pub steps: u64,
    /// All atoms, sorted by tag.
    pub states: Vec<RankAtomState>,
    /// Globally reduced pair energy of the final configuration.
    pub e_pair: f64,
    /// Globally reduced kinetic energy of the final configuration.
    pub e_kinetic: f64,
    /// Per-rank thermo rows (local quantities — not reduced).
    pub thermo: Vec<Vec<ThermoRow>>,
    /// Exchange counters summed over ranks.
    pub comm_stats: CommStats,
    /// Message-pool growths summed over ranks: total and after warmup.
    pub comm_grow: u64,
    pub comm_grow_after_warmup: u64,
    /// Neighbor-list growths summed over ranks: total and after warmup.
    pub neighbor_grow: u64,
    pub neighbor_grow_after_warmup: u64,
    /// Scatter-pool growths summed over ranks: total and after warmup.
    pub scatter_grow: u64,
    pub scatter_grow_after_warmup: u64,
    pub rebuild_counts: Vec<u64>,
    /// Neighbor pairs summed over ranks at the final build.
    pub total_pairs: u64,
    pub timings: Vec<Timings>,
    /// Owned (`nlocal`) atoms per rank at the end of the run.
    pub owned_atoms: Vec<usize>,
}

/// max/mean of a per-rank sample: 1.0 = perfectly balanced, and the
/// excess over 1.0 is the fraction of the slowest rank's work the
/// average rank does not share (the paper's strong-scaling breakdowns
/// hinge on exactly this ratio).
fn imbalance(samples: impl Iterator<Item = f64>) -> f64 {
    let (mut max, mut sum, mut n) = (f64::NEG_INFINITY, 0.0, 0u32);
    for s in samples {
        max = max.max(s);
        sum += s;
        n += 1;
    }
    if n == 0 || sum <= 0.0 {
        return 1.0;
    }
    max / (sum / n as f64)
}

impl MultiRankRun {
    /// Load imbalance of the final atom distribution: max/mean owned
    /// atoms across ranks.
    pub fn atom_imbalance(&self) -> f64 {
        imbalance(self.owned_atoms.iter().map(|&n| n as f64))
    }

    /// Load imbalance of the measured pair-force time: max/mean of the
    /// per-rank `Timings::pair` seconds. Wall-clock derived — advisory,
    /// never part of a deterministic baseline.
    pub fn pair_time_imbalance(&self) -> f64 {
        imbalance(self.timings.iter().map(|t| t.pair))
    }
}

struct RankOutcome {
    states: Vec<RankAtomState>,
    e_pair: f64,
    e_kinetic: f64,
    thermo: Vec<ThermoRow>,
    stats: CommStats,
    comm_grow: u64,
    comm_grow_warm: u64,
    neighbor_grow: u64,
    neighbor_grow_warm: u64,
    scatter_grow: u64,
    scatter_grow_warm: u64,
    rebuild_count: u64,
    total_pairs: u64,
    timings: Timings,
    nlocal: usize,
}

/// Run a simulation decomposed over `nranks` simulated MPI ranks, each
/// on its own thread inside a `rank{r}` profiling region.
///
/// `factory` is called once per rank with the rank index and that
/// rank's [`System`] (atoms partitioned by brick, [`BrickComm`]
/// installed) and must return the [`Simulation`] to drive — which is
/// how *any* pair style or fix runs unmodified on N ranks. Every rank
/// must be configured identically (same styles, same neighbor
/// settings): the exchanges are collective, and divergent
/// configuration desyncs them.
pub fn run_rank_parallel<F>(spec: &RankParallelSpec, nranks: usize, factory: F) -> MultiRankRun
where
    F: Fn(usize, System) -> Simulation + Sync,
{
    let decomp = BrickDecomp::new(spec.domain, nranks);
    let nranks = decomp.nranks();
    let comms = BrickComm::create_all(&decomp);
    let natoms = spec.records.len();
    let mut shares: Vec<Vec<AtomRecord>> = (0..nranks).map(|_| Vec::new()).collect();
    for r in &spec.records {
        let mut x = r.x;
        spec.domain.wrap(&mut x);
        shares[decomp.rank_of(&x)].push(AtomRecord { x, ..*r });
    }

    let outcomes: Vec<RankOutcome> = std::thread::scope(|scope| {
        let factory = &factory;
        let handles: Vec<_> = comms
            .into_iter()
            .zip(shares)
            .enumerate()
            .map(|(rank, (comm, share))| {
                scope.spawn(move || {
                    // Everything this thread does nests under its rank
                    // region, so subscribers see per-rank buckets.
                    let _rank_region = profile::begin_region(format!("rank{rank}"));
                    let atoms = AtomData::from_records(&share, &spec.masses);
                    let mut system =
                        System::new(atoms, spec.domain, spec.space.clone()).with_units(spec.units);
                    system.comm = Some(Box::new(comm));
                    let mut sim = factory(rank, system);
                    sim.run(spec.warmup_steps);
                    let comm_grow_warm = sim.comm_grow_count();
                    let neighbor_grow_warm = sim.neighbor_grow_count();
                    let scatter_grow_warm = sim.pair.scatter_grow_count();
                    sim.run(spec.steps);
                    let total_pairs = sim.neighbor_list().total_pairs;
                    sim.system.atoms.sync(&Space::Serial, Mask::ALL);
                    let states: Vec<RankAtomState> = {
                        let a = &sim.system.atoms;
                        let x = a.x.h_view();
                        let v = a.v.h_view();
                        let f = a.f.h_view();
                        let tag = a.tag.h_view();
                        let typ = a.typ.h_view();
                        (0..a.nlocal)
                            .map(|i| RankAtomState {
                                tag: tag.at([i]),
                                typ: typ.at([i]),
                                x: [x.at([i, 0]), x.at([i, 1]), x.at([i, 2])],
                                v: [v.at([i, 0]), v.at([i, 1]), v.at([i, 2])],
                                f: [f.at([i, 0]), f.at([i, 1]), f.at([i, 2])],
                            })
                            .collect()
                    };
                    let e_local = sim.last_results.energy;
                    let e_pair = sim.system.with_comm_taken(|_, c| c.allreduce_sum(e_local));
                    let ke_local = compute::kinetic_energy(&sim.system.atoms, &sim.system.units);
                    let e_kinetic = sim.system.with_comm_taken(|_, c| c.allreduce_sum(ke_local));
                    RankOutcome {
                        states,
                        e_pair,
                        e_kinetic,
                        thermo: sim.thermo.clone(),
                        stats: sim.comm_stats(),
                        comm_grow: sim.comm_grow_count(),
                        comm_grow_warm,
                        neighbor_grow: sim.neighbor_grow_count(),
                        neighbor_grow_warm,
                        scatter_grow: sim.pair.scatter_grow_count(),
                        scatter_grow_warm,
                        rebuild_count: sim.rebuild_count,
                        total_pairs,
                        timings: sim.timings,
                        nlocal: sim.system.atoms.nlocal,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut states: Vec<RankAtomState> = outcomes
        .iter()
        .flat_map(|o| o.states.iter().copied())
        .collect();
    states.sort_by_key(|s| s.tag);
    debug_assert_eq!(states.len(), natoms, "atoms lost or duplicated");
    let mut comm_stats = CommStats::default();
    for o in &outcomes {
        comm_stats.add(&o.stats);
    }
    MultiRankRun {
        nranks,
        natoms,
        steps: spec.steps,
        e_pair: outcomes[0].e_pair,
        e_kinetic: outcomes[0].e_kinetic,
        comm_stats,
        comm_grow: outcomes.iter().map(|o| o.comm_grow).sum(),
        comm_grow_after_warmup: outcomes
            .iter()
            .map(|o| o.comm_grow - o.comm_grow_warm)
            .sum(),
        neighbor_grow: outcomes.iter().map(|o| o.neighbor_grow).sum(),
        neighbor_grow_after_warmup: outcomes
            .iter()
            .map(|o| o.neighbor_grow - o.neighbor_grow_warm)
            .sum(),
        scatter_grow: outcomes.iter().map(|o| o.scatter_grow).sum(),
        scatter_grow_after_warmup: outcomes
            .iter()
            .map(|o| o.scatter_grow - o.scatter_grow_warm)
            .sum(),
        rebuild_counts: outcomes.iter().map(|o| o.rebuild_count).collect(),
        total_pairs: outcomes.iter().map(|o| o.total_pairs).sum(),
        owned_atoms: outcomes.iter().map(|o| o.nlocal).collect(),
        timings: outcomes.iter().map(|o| o.timings).collect(),
        thermo: outcomes.into_iter().map(|o| o.thermo).collect(),
        states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::build_ghosts;

    #[test]
    fn bufpool_reaches_steady_state() {
        let mut pool = BufPool::new();
        let a = pool.acquire(10);
        assert!(a.capacity() >= 1024);
        pool.free.push(a);
        let after_first = pool.grow_count;
        for _ in 0..100 {
            let b = pool.acquire(500);
            pool.free.push(b);
        }
        assert_eq!(pool.grow_count, after_first, "pool grew in steady state");
    }

    #[test]
    fn record_pack_round_trips() {
        let r = AtomRecord {
            tag: -42,
            typ: 3,
            q: -0.7,
            x: [1.5, -2.5, 3.5],
            v: [0.1, -0.2, 0.3],
            image: [-1, 0, 2],
        };
        let mut buf = Vec::new();
        pack_record(&mut buf, &r);
        assert_eq!(buf.len(), MIGRATE_WORDS);
        assert_eq!(unpack_record(&buf), r);
    }

    #[test]
    fn single_brick_matches_single_rank_ghost_set() {
        // On a [1,1,1] grid every ghost is a periodic self image; the
        // (owner, shift) multiset must equal the single-rank builder's.
        let positions = [
            [0.5, 0.5, 0.5],
            [5.0, 5.0, 5.0],
            [9.5, 5.0, 0.3],
            [0.1, 9.9, 5.0],
        ];
        let domain = Domain::cubic(10.0);
        let mut reference = AtomData::from_positions(&positions);
        let ref_map = build_ghosts(&mut reference, &domain, 2.0);

        let decomp = BrickDecomp::new(domain, 1);
        let mut comms = BrickComm::create_all(&decomp);
        let mut comm = comms.pop().unwrap();
        let atoms = AtomData::from_positions(&positions);
        let mut system = System::new(atoms, domain, Space::Serial);
        comm.borders(&mut system, 2.0);

        assert_eq!(system.ghosts.nghost(), ref_map.nghost());
        let key = |o: usize, s: [f64; 3]| (o, s.map(|v| v.to_bits()));
        let mut a: Vec<_> = ref_map
            .owner
            .iter()
            .zip(&ref_map.shift)
            .map(|(&o, &s)| key(o, s))
            .collect();
        let mut b: Vec<_> = system
            .ghosts
            .owner
            .iter()
            .zip(&system.ghosts.shift)
            .map(|(&o, &s)| key(o, s))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(
            comm.stats(),
            CommStats::default(),
            "1-rank comm sent messages"
        );
    }

    #[test]
    fn two_rank_exchange_and_collectives() {
        // Grid [1,1,2]: rank 0 owns z in [0,5), rank 1 owns z in [5,10).
        let domain = Domain::cubic(10.0);
        let decomp = BrickDecomp::new(domain, 2);
        assert_eq!(decomp.grid, [1, 1, 2]);
        let comms = BrickComm::create_all(&decomp);
        let shares = [vec![[5.0, 5.0, 4.9]], vec![[5.0, 5.0, 5.1]]];
        let results: Vec<(usize, f64, [f64; 3])> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .zip(shares)
                .enumerate()
                .map(|(rank, (mut comm, share))| {
                    scope.spawn(move || {
                        let atoms = AtomData::from_positions(&share);
                        let mut system = System::new(atoms, domain, Space::Serial);
                        comm.borders(&mut system, 1.0);
                        // One remote ghost from the facing rank, no wrap.
                        assert_eq!(system.atoms.nlocal, 1);
                        assert_eq!(system.atoms.nghost, 1);
                        assert_eq!(system.ghosts.nghost(), 0, "no self images expected");
                        let ghost_z = system.atoms.pos(1)[2];
                        // Owner moves; forward refreshes the peer's ghost.
                        let dz = if rank == 0 { -0.05 } else { 0.05 };
                        {
                            let xh = system.atoms.x.h_view_mut();
                            let z = xh.at([0, 2]) + dz;
                            xh.set([0, 2], z);
                        }
                        comm.forward(&mut system);
                        let ghost_z_after = system.atoms.pos(1)[2];
                        // Put a force on the ghost; reverse folds it to
                        // the owner on the other rank.
                        {
                            let fh = system.atoms.f.h_view_mut();
                            fh.set([1, 0], 1.0 + rank as f64);
                        }
                        comm.reverse(&mut system);
                        let own_force = system.atoms.f.h_view().at([0, 0]);
                        // Scalar forwarding and the collectives.
                        let mut vals = vec![0.0; system.atoms.nall()];
                        vals[0] = 10.0 * (rank + 1) as f64;
                        comm.forward_scalar(&mut system, &mut vals);
                        let ghost_scalar = vals[1];
                        assert!(comm.allreduce_or(rank == 1));
                        assert!(!comm.allreduce_or(false));
                        let sum = comm.allreduce_sum(0.5 + rank as f64);
                        (
                            rank,
                            sum,
                            [ghost_z, ghost_z_after, own_force + ghost_scalar],
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, sum, [gz, gz_after, combined]) in results {
            assert_eq!(sum, 2.0, "rank {rank} reduced sum");
            if rank == 0 {
                assert!((gz - 5.1).abs() < 1e-12);
                assert!((gz_after - 5.15).abs() < 1e-12);
                // Peer (rank 1) put force 2.0 on our ghosted atom and
                // reverse delivered it; its scalar 20.0 arrived on our
                // ghost row.
                assert_eq!(combined, 2.0 + 20.0);
            } else {
                assert!((gz - 4.9).abs() < 1e-12);
                assert!((gz_after - 4.85).abs() < 1e-12);
                assert_eq!(combined, 1.0 + 10.0);
            }
        }
    }

    #[test]
    fn periodic_wrap_ghosts_cross_the_box() {
        // Two ranks, atoms near the *outer* z faces: ghosts must arrive
        // shifted by ±L so minimum-image pairs see them adjacent.
        let domain = Domain::cubic(10.0);
        let decomp = BrickDecomp::new(domain, 2);
        let comms = BrickComm::create_all(&decomp);
        let shares = [vec![[5.0, 5.0, 0.2]], vec![[5.0, 5.0, 9.8]]];
        let ghost_zs: Vec<(usize, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .zip(shares)
                .enumerate()
                .map(|(rank, (mut comm, share))| {
                    scope.spawn(move || {
                        let atoms = AtomData::from_positions(&share);
                        let mut system = System::new(atoms, domain, Space::Serial);
                        comm.borders(&mut system, 1.0);
                        assert_eq!(system.atoms.nghost, 1);
                        (rank, system.atoms.pos(1)[2])
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rank, gz) in ghost_zs {
            if rank == 0 {
                // Rank 1's atom at 9.8, wrapped below our brick: -0.2.
                assert!((gz - (-0.2)).abs() < 1e-12, "rank 0 ghost z = {gz}");
            } else {
                assert!((gz - 10.2).abs() < 1e-12, "rank 1 ghost z = {gz}");
            }
        }
    }

    #[test]
    fn migration_moves_atoms_to_their_brick() {
        let domain = Domain::cubic(10.0);
        let decomp = BrickDecomp::new(domain, 2);
        let comms = BrickComm::create_all(&decomp);
        // Rank 0 starts holding an atom that belongs to rank 1 (z=7)
        // and one of its own; rank 1 holds one atom drifted out of the
        // box (z=11.5 wraps to 1.5 → rank 0).
        let shares = [
            vec![[2.0, 2.0, 2.0], [2.0, 2.0, 7.0]],
            vec![[8.0, 8.0, 11.5]],
        ];
        let finals: Vec<(usize, usize, Vec<i64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .zip(shares)
                .enumerate()
                .map(|(rank, (mut comm, share))| {
                    scope.spawn(move || {
                        let atoms = AtomData::from_positions(&share);
                        let mut system = System::new(atoms, domain, Space::Serial);
                        comm.borders(&mut system, 1.0);
                        let tags = (0..system.atoms.nlocal)
                            .map(|i| system.atoms.tag.h_view().at([i]))
                            .collect();
                        (rank, system.atoms.nlocal, tags, comm.stats().migrate_msgs)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Tags are per-rank sequential here (1, 2 on rank 0; 1 on rank
        // 1): rank 0 keeps its tag-1 atom and receives rank 1's wrapped
        // one (also tag 1); rank 1 receives rank 0's tag-2 atom.
        for (rank, nlocal, tags, migrate_msgs) in finals {
            assert!(migrate_msgs > 0, "rank {rank} migrated nothing");
            if rank == 0 {
                assert_eq!(nlocal, 2, "rank 0 should own its atom + the wrapped one");
                assert_eq!(tags, vec![1, 1]);
            } else {
                assert_eq!(nlocal, 1);
                assert_eq!(tags, vec![2]);
            }
        }
    }
}
