//! Deterministic load balancing for the brick decomposition.
//!
//! LAMMPS ships `fix balance` to shift the processor grid's cut planes
//! when density is non-uniform (melt fronts, voids, the skewed
//! workloads TestSNAP-style studies use); the paper's strong-scaling
//! results (§5) assume work stays evenly spread. This module is the
//! geometry/arithmetic side of our equivalent: pure functions that turn
//! a per-dimension atom census into interior cut fractions for
//! [`crate::decomp::BrickDecomp::set_cuts`], and the
//! [`BalancePolicy`] knob the comm layer
//! ([`crate::comm::brick::BrickComm`]) consults.
//!
//! Everything here is a pure function of integer censuses — never
//! wall-clock — so every rank computes bitwise-identical cuts from the
//! exchanged histograms, and a balanced run's *trigger schedule* is a
//! pure function of the workload. See `docs/comm.md` for the full
//! determinism argument.

/// Weight source for the balancer's census.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceWeight {
    /// Weight every atom equally (the deterministic default: cuts are a
    /// pure function of the atom census).
    #[default]
    AtomCount,
    /// Weight each rank's atoms by its measured pair-force seconds per
    /// atom since the previous census. Wall-clock derived — cuts still
    /// agree bitwise *across ranks* (the measurements are exchanged),
    /// but differ run to run, perturbing trajectories the way
    /// `sort_every` does. Advisory; never part of a pinned baseline.
    PairTime,
}

/// When and how the brick decomposition rebalances. Installed per run
/// via `CommSpec::Brick { balance, .. }` (or
/// [`crate::comm::brick::BrickComm::set_balance`]); `None` keeps the
/// static uniform grid and the exchange sequence bit-identical to the
/// pre-balancer layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancePolicy {
    /// Exchange a census (and consider rebalancing) on every `every`-th
    /// `borders()` call; `0` disables balancing entirely.
    pub every: u64,
    /// Rebalance only when the census imbalance (max/mean owned atoms)
    /// exceeds this; `1.0` rebalances on any measurable skew.
    pub threshold: f64,
    /// Histogram bins per dimension for cut placement (resolution of
    /// the density estimate; cuts interpolate linearly within a bin).
    pub bins: usize,
    /// Weight source for the census.
    pub weight: BalanceWeight,
}

impl Default for BalancePolicy {
    fn default() -> Self {
        BalancePolicy {
            every: 1,
            threshold: 1.05,
            bins: 64,
            weight: BalanceWeight::AtomCount,
        }
    }
}

/// max/mean of a per-rank census: 1.0 = perfectly balanced. Integer
/// arithmetic until the final division, so every rank that holds the
/// same census computes the identical value.
pub fn census_imbalance(counts: &[u64]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 1.0;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *counts.iter().max().unwrap();
    max as f64 * n as f64 / total as f64
}

/// Per-rank census weight in integer ticks: 1 for [`BalanceWeight::
/// AtomCount`]; for [`BalanceWeight::PairTime`], nanoseconds of
/// measured pair time per owned atom (floored at 1 so an idle or
/// just-started rank still counts its atoms).
pub fn weight_ticks(weight: BalanceWeight, seconds: f64, natoms: usize) -> u64 {
    match weight {
        BalanceWeight::AtomCount => 1,
        BalanceWeight::PairTime => {
            let per_atom = seconds * 1e9 / natoms.max(1) as f64;
            (per_atom.round() as u64).max(1)
        }
    }
}

/// Place `nparts - 1` interior cut fractions so each part holds an
/// equal share of the histogram's weight, interpolating linearly within
/// bins (`hist[b]` covers the fraction interval `[b/n, (b+1)/n)` of the
/// box). An all-zero histogram falls back to uniform cuts. The result
/// is non-decreasing but not width-clamped — callers follow with
/// [`clamp_cuts`], which also restores strict monotonicity.
pub fn cuts_from_histogram(hist: &[u64], nparts: usize) -> Vec<f64> {
    assert!(nparts >= 1);
    let nbins = hist.len();
    let mut cuts = Vec::with_capacity(nparts - 1);
    let total: u64 = hist.iter().sum();
    if total == 0 || nbins == 0 {
        for j in 1..nparts {
            cuts.push(j as f64 / nparts as f64);
        }
        return cuts;
    }
    // Walk the cumulative histogram once; the quantile targets are
    // increasing, so `b`/`cum` only move forward.
    let mut cum = 0u64; // weight strictly below bin `b`
    let mut b = 0usize;
    for j in 1..nparts {
        let target = total as f64 * j as f64 / nparts as f64;
        while b < nbins && ((cum + hist[b]) as f64) < target {
            cum += hist[b];
            b += 1;
        }
        let inside = if b < nbins && hist[b] > 0 {
            (target - cum as f64) / hist[b] as f64
        } else {
            0.0
        };
        cuts.push(((b as f64 + inside) / nbins as f64).clamp(0.0, 1.0));
    }
    cuts
}

/// Enforce a minimum slab width of `min_frac` between consecutive cuts
/// (and against the 0/1 box faces): the halo layer requires every
/// sub-domain to be at least `cutghost` wide. Requires feasibility
/// (`(cuts.len() + 1) as f64 * min_frac <= 1.0`); the forward pass
/// pushes narrow slabs up, the backward pass pushes them down, and
/// together they also restore strict monotonicity.
pub fn clamp_cuts(cuts: &mut [f64], min_frac: f64) {
    debug_assert!(
        (cuts.len() + 1) as f64 * min_frac <= 1.0,
        "min_frac {min_frac} infeasible for {} parts",
        cuts.len() + 1
    );
    let mut prev = 0.0;
    for c in cuts.iter_mut() {
        if *c < prev + min_frac {
            *c = prev + min_frac;
        }
        prev = *c;
    }
    let mut next = 1.0;
    for c in cuts.iter_mut().rev() {
        if *c > next - min_frac {
            *c = next - min_frac;
        }
        next = *c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_histogram_gives_uniform_cuts() {
        let hist = vec![10u64; 8];
        let cuts = cuts_from_histogram(&hist, 4);
        assert_eq!(cuts.len(), 3);
        for (j, c) in cuts.iter().enumerate() {
            assert!(
                (c - (j + 1) as f64 / 4.0).abs() < 1e-12,
                "cut {j} = {c}, expected {}",
                (j + 1) as f64 / 4.0
            );
        }
    }

    #[test]
    fn empty_histogram_falls_back_to_uniform() {
        let cuts = cuts_from_histogram(&[0u64; 16], 4);
        assert_eq!(cuts, vec![0.25, 0.5, 0.75]);
        assert!(cuts_from_histogram(&[0u64; 16], 1).is_empty());
    }

    #[test]
    fn skewed_histogram_shifts_cuts_toward_density() {
        // All weight in the first quarter of the box: the median cut of
        // a 2-way split must land inside that quarter.
        let mut hist = vec![0u64; 16];
        for h in hist.iter_mut().take(4) {
            *h = 100;
        }
        let cuts = cuts_from_histogram(&hist, 2);
        assert_eq!(cuts.len(), 1);
        assert!((cuts[0] - 0.125).abs() < 1e-12, "median at {}", cuts[0]);
    }

    #[test]
    fn interpolation_splits_within_a_bin() {
        // One hot bin: quartile cuts of a 4-way split all interpolate
        // inside it.
        let mut hist = vec![0u64; 10];
        hist[5] = 1000;
        let cuts = cuts_from_histogram(&hist, 4);
        for (j, c) in cuts.iter().enumerate() {
            let expect = 0.5 + 0.1 * (j + 1) as f64 / 4.0;
            assert!((c - expect).abs() < 1e-12, "cut {j} = {c} vs {expect}");
        }
    }

    #[test]
    fn cuts_equalize_the_weight_exactly_per_part() {
        // Piecewise-constant density: the weight left of each cut is
        // exactly j/nparts of the total under linear interpolation.
        let hist = vec![5u64, 1, 1, 9, 4, 0, 3, 7];
        let total: u64 = hist.iter().sum();
        let nbins = hist.len() as f64;
        let cuts = cuts_from_histogram(&hist, 5);
        for (j, &c) in cuts.iter().enumerate() {
            let mut left = 0.0;
            for (b, &h) in hist.iter().enumerate() {
                let b_lo = b as f64 / nbins;
                let b_hi = (b + 1) as f64 / nbins;
                let overlap = ((c - b_lo) / (b_hi - b_lo)).clamp(0.0, 1.0);
                left += h as f64 * overlap;
            }
            let want = total as f64 * (j + 1) as f64 / 5.0;
            assert!((left - want).abs() < 1e-9, "cut {j}: {left} vs {want}");
        }
    }

    #[test]
    fn clamp_enforces_min_width_and_monotonicity() {
        let mut cuts = vec![0.05, 0.051, 0.052];
        clamp_cuts(&mut cuts, 0.1);
        assert_eq!(cuts, vec![0.1, 0.2, 0.30000000000000004]);
        // Pushed against the top face: backward pass pulls them down.
        let mut cuts = vec![0.97, 0.98, 0.99];
        clamp_cuts(&mut cuts, 0.1);
        for (i, c) in cuts.iter().enumerate() {
            assert!((c - (0.7 + 0.1 * i as f64)).abs() < 1e-12);
        }
        // A non-monotone input comes out strictly increasing.
        let mut cuts = vec![0.5, 0.5, 0.4];
        clamp_cuts(&mut cuts, 0.05);
        assert!(cuts.windows(2).all(|w| w[1] - w[0] >= 0.05 - 1e-15));
        assert!(cuts[0] >= 0.05 - 1e-15 && cuts[2] <= 0.95 + 1e-15);
    }

    #[test]
    fn census_imbalance_is_max_over_mean() {
        assert_eq!(census_imbalance(&[10, 10, 10, 10]), 1.0);
        assert_eq!(census_imbalance(&[20, 10, 5, 5]), 2.0);
        assert_eq!(census_imbalance(&[]), 1.0);
        assert_eq!(census_imbalance(&[0, 0]), 1.0);
    }

    #[test]
    fn weight_ticks_modes() {
        assert_eq!(weight_ticks(BalanceWeight::AtomCount, 123.0, 7), 1);
        // 2e-6 s over 1000 atoms = 2 ns/atom.
        assert_eq!(weight_ticks(BalanceWeight::PairTime, 2e-6, 1000), 2);
        // Floored at 1 tick so idle ranks still count atoms.
        assert_eq!(weight_ticks(BalanceWeight::PairTime, 0.0, 1000), 1);
        assert_eq!(weight_ticks(BalanceWeight::PairTime, 1.0, 0), 1_000_000_000);
    }
}
