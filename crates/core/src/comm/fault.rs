//! Deterministic fault injection and recovery for the brick comm layer.
//!
//! The paper's exascale runs assume halo exchange survives slow, lossy,
//! heterogeneous interconnects. Our simulated-MPI transport
//! ([`crate::comm::brick::BrickComm`]) historically assumed every
//! channel send/recv succeeded instantly, so a single stalled rank
//! wedged the whole scoped-thread run. This module supplies the two
//! halves of the robustness story:
//!
//! 1. **Injection** — a [`FaultPlan`]: an xorshift-seeded schedule of
//!    message *delay*, *drop*, *duplication*, *reorder*, and
//!    *payload-corruption* events, keyed by `(edge, seq)` where `seq`
//!    enumerates the (step, phase) exchanges on each directed rank pair
//!    in lockstep. The schedule is a pure function of
//!    `(seed, src, dst, seq)` — no RNG state threads through the run —
//!    so both endpoints of an edge agree on it and a replay with the
//!    same seed injects byte-identical faults.
//! 2. **Recovery** — the envelope protocol in `brick.rs`: sequence
//!    numbers detect duplicates/reorders, a CRC32 over the payload
//!    detects corruption, per-phase receive timeouts with bounded
//!    exponential backoff send NACKs over a control channel, and the
//!    sender retransmits from pre-packed envelopes. The recovered
//!    payload is bit-identical to the clean transmission, so a run
//!    whose faults are all recoverable reproduces the fault-free
//!    trajectory *bitwise* (`tests/fault_injection.rs` pins this for a
//!    16-seed sweep at P ∈ {2, 4, 8}).
//!
//! When recovery is impossible (a [`DeadEdge`] that drops retransmits
//! too, or a vanished peer), the exchange returns a structured
//! [`CommError`] instead of deadlocking; [`RunSpec::run`](crate::comm::brick::RunSpec::run) gathers
//! the per-rank errors into a [`CommFailure`](crate::comm::brick::CommFailure).
//! See `docs/robustness.md` for the full fault model and determinism
//! contract.

use std::fmt;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A structured, per-rank communication failure. Every exchange method
/// of [`crate::comm::Comm`] returns `Result<_, CommError>`; multi-rank
/// drivers harvest these into per-rank diagnostics instead of letting a
/// stalled exchange deadlock the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The resilient receiver exhausted its retry budget waiting for a
    /// peer's message — the peer is alive but the edge is dead (every
    /// NACKed retransmit was lost too).
    Timeout {
        rank: usize,
        peer: usize,
        /// Exchange phase name (`"forward"`, `"border"`, ...).
        phase: &'static str,
        /// The per-edge sequence number that never arrived.
        seq: u64,
        /// NACK/backoff rounds spent before giving up.
        retries: u32,
        /// Total wall-clock waited, for the diagnostic only.
        waited_ms: u64,
    },
    /// A peer's channel endpoints dropped mid-exchange: its thread
    /// returned an error (or panicked) and tore down its comm.
    PeerDisconnected {
        rank: usize,
        peer: usize,
        phase: &'static str,
    },
    /// A rank thread panicked; the payload message is preserved for the
    /// gathered diagnostics.
    RankPanicked { rank: usize, message: String },
}

impl CommError {
    /// The rank this error was observed on.
    pub fn rank(&self) -> usize {
        match self {
            CommError::Timeout { rank, .. }
            | CommError::PeerDisconnected { rank, .. }
            | CommError::RankPanicked { rank, .. } => *rank,
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout {
                rank,
                peer,
                phase,
                seq,
                retries,
                waited_ms,
            } => write!(
                f,
                "rank {rank}: {phase} recv from rank {peer} timed out at seq {seq} \
                 after {retries} retransmit requests ({waited_ms} ms)"
            ),
            CommError::PeerDisconnected { rank, peer, phase } => {
                write!(f, "rank {rank}: peer {peer} disconnected during {phase}")
            }
            CommError::RankPanicked { rank, message } => {
                write!(f, "rank {rank}: panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CommError {}

// ---------------------------------------------------------------------
// Fault schedule
// ---------------------------------------------------------------------

/// One kind of injected transport fault. At most one fault fires per
/// `(edge, seq)` event, which keeps the message-pool demand of the
/// recovery path a deterministic function of the plan (the steady-state
/// `pool_grow_after_warmup == 0` invariant extends to faulted runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sender stalls a bounded number of milliseconds before sending.
    Delay,
    /// The original transmission is lost; the packed envelope is parked
    /// as the retransmit copy and delivered on NACK.
    Drop,
    /// The envelope is delivered twice; the receiver discards the
    /// second copy by sequence number.
    Duplicate,
    /// A stale copy of the *previous* envelope on this edge is
    /// delivered first; the receiver discards it by sequence number.
    Reorder,
    /// One payload bit is flipped after the CRC is computed; the
    /// receiver detects the mismatch and NACKs for the clean copy.
    Corrupt,
}

const KINDS: [FaultKind; 5] = [
    FaultKind::Delay,
    FaultKind::Drop,
    FaultKind::Duplicate,
    FaultKind::Reorder,
    FaultKind::Corrupt,
];

/// A fault drawn for one `(edge, seq)` event, plus the auxiliary
/// randomness its application needs (delay length, corrupted bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub kind: FaultKind,
    /// Sleep length for [`FaultKind::Delay`], in `1..=max_delay_ms`.
    pub delay_ms: u64,
    /// Raw auxiliary bits (bit/word selection for corruption).
    pub aux: u64,
}

/// Receive-side timeout and retransmit policy: how long the resilient
/// receiver polls before asking for a retransmit, and how many
/// exponentially backed-off NACK rounds it spends before declaring the
/// edge dead with [`CommError::Timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// `recv_timeout` slice; every expiry also services inbound NACKs.
    pub poll_ms: u64,
    /// First NACK fires this long after the receive started.
    pub nack_base_ms: u64,
    /// Backoff doubles per round, capped here (bounded exponential).
    pub nack_cap_ms: u64,
    /// NACK rounds before giving up. Total budget is roughly
    /// `Σ min(base·2ᵏ, cap)` — keep it well under any CI watchdog.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            poll_ms: 1,
            nack_base_ms: 10,
            nack_cap_ms: 80,
            max_retries: 10,
        }
    }
}

impl RetryPolicy {
    /// Upper bound on the wall-clock one receive can spend before
    /// failing, in milliseconds (the watchdog budget tests assert on).
    pub fn budget_ms(&self) -> u64 {
        let mut total = 0;
        let mut backoff = self.nack_base_ms;
        for _ in 0..=self.max_retries {
            total += backoff;
            backoff = (backoff * 2).min(self.nack_cap_ms);
        }
        total
    }
}

/// An unrecoverable fault: from `from_seq` on, *every* transmission on
/// the directed edge `src → dst` is dropped, retransmits included. The
/// receiver exhausts its retries and the run aborts with structured
/// errors on all ranks — the no-deadlock path `tests/fault_injection.rs`
/// watchdogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadEdge {
    pub src: usize,
    pub dst: usize,
    pub from_seq: u64,
}

/// Seeded fault-injection configuration, shared verbatim by every rank
/// of a run (install via `RunSpec::fault` or
/// `BrickComm::install_fault_plan`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Schedule seed; equal seeds inject identical fault schedules.
    pub seed: u64,
    /// Probability that an `(edge, seq)` event faults, in parts per
    /// 1024 (an integer draw keeps the schedule exactly portable).
    pub rate_per_1024: u32,
    /// Delay faults sleep `1..=max_delay_ms` milliseconds. Keep this
    /// well below `policy.nack_base_ms` or delays masquerade as drops.
    pub max_delay_ms: u64,
    pub policy: RetryPolicy,
    /// Unrecoverable mode: a dead edge that defeats retransmission.
    pub dead_edge: Option<DeadEdge>,
}

impl FaultConfig {
    /// A recoverable chaos schedule: ~3% of exchanges fault, delays up
    /// to 2 ms, default retry policy, no dead edge. Any run under this
    /// config must finish and reproduce the fault-free trajectory
    /// bitwise.
    pub fn recoverable(seed: u64) -> Self {
        FaultConfig {
            seed,
            rate_per_1024: 32,
            max_delay_ms: 2,
            policy: RetryPolicy::default(),
            dead_edge: None,
        }
    }

    /// An unrecoverable schedule: on top of light recoverable chaos,
    /// the edge `src → dst` goes permanently dead at `from_seq`. The
    /// retry policy is tightened so the abort lands well inside a test
    /// watchdog.
    pub fn unrecoverable(seed: u64, src: usize, dst: usize, from_seq: u64) -> Self {
        FaultConfig {
            seed,
            rate_per_1024: 8,
            max_delay_ms: 1,
            policy: RetryPolicy {
                poll_ms: 1,
                nack_base_ms: 4,
                nack_cap_ms: 16,
                max_retries: 5,
            },
            dead_edge: Some(DeadEdge { src, dst, from_seq }),
        }
    }
}

/// The per-rank view of a fault schedule: pure-function draws over
/// `(src, dst, seq)` plus the retry policy. Stateless by construction —
/// see the module docs for why that is the determinism anchor.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    pub fn policy(&self) -> RetryPolicy {
        self.cfg.policy
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when the directed edge is permanently dead at `seq`
    /// (originals *and* retransmits are discarded).
    pub fn edge_dead(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.cfg
            .dead_edge
            .is_some_and(|d| d.src == src && d.dst == dst && seq >= d.from_seq)
    }

    /// The fault (if any) injected into the transmission of `seq` on
    /// the directed edge `src → dst`. Pure: any rank, any time, same
    /// answer.
    pub fn draw(&self, src: usize, dst: usize, seq: u64) -> Option<FaultEvent> {
        let mut s = mix64(
            self.cfg
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15)
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                ^ ((src as u64) << 42)
                ^ ((dst as u64) << 21)
                ^ seq.wrapping_mul(0xd6e8_feb8_6659_fd93),
        );
        // xorshift64* draws off the mixed state.
        let gate = xorshift64star(&mut s);
        if (gate & 1023) as u32 >= self.cfg.rate_per_1024 {
            return None;
        }
        let kind = KINDS[(xorshift64star(&mut s) % KINDS.len() as u64) as usize];
        let delay_ms = 1 + xorshift64star(&mut s) % self.cfg.max_delay_ms.max(1);
        let aux = xorshift64star(&mut s);
        Some(FaultEvent {
            kind,
            delay_ms,
            aux,
        })
    }
}

/// The globally unique identity of one envelope transmission, packed
/// into the 64-bit flow id the tracing layer stamps on its Perfetto
/// `s`/`f` events: `src:16 | dst:16 | tag:8 | seq:24`. The fields are
/// exactly the envelope identity both endpoints already agree on —
/// `(directed edge, phase tag, per-edge sequence number)` — so the
/// sender computes the id at dispatch and the receiver recomputes the
/// *same* id at acceptance without any extra bytes on the wire.
/// Retransmits and duplicates reuse the original's id (same seq), so a
/// recovered flow still binds exactly one begin to one end.
///
/// The layout holds for ≤ 65 536 ranks, ≤ 256 phase tags, and ≤ 2²⁴
/// exchanges per directed edge — far beyond anything the simulated
/// runs reach; the widths are debug-asserted.
pub fn flow_id(src: usize, dst: usize, tag: u64, seq: u64) -> u64 {
    debug_assert!(src < (1 << 16) && dst < (1 << 16), "rank field overflow");
    debug_assert!(tag < (1 << 8), "tag field overflow");
    debug_assert!(seq < (1 << 24), "seq field overflow");
    ((src as u64) << 48) | ((dst as u64) << 32) | ((tag & 0xff) << 24) | (seq & 0xff_ffff)
}

/// SplitMix64 finalizer: one-shot avalanche of a 64-bit key.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One xorshift64* step (Marsaglia/Vigna); the schedule's draw stream.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

// ---------------------------------------------------------------------
// Fault/recovery counters
// ---------------------------------------------------------------------

/// Cumulative fault-injection and recovery counters of one comm
/// endpoint. All integers; summed over ranks by the rank-parallel
/// driver and harvested into the metrics registry as `comm.fault.*`
/// when a trace collector is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected: sender stalled before sending.
    pub delays: u64,
    /// Injected: original transmission withheld (recoverable drop) or
    /// discarded (dead edge).
    pub drops: u64,
    /// Injected: envelope sent twice.
    pub duplicates: u64,
    /// Injected: stale previous envelope sent first.
    pub reorders: u64,
    /// Injected: payload bit flipped after CRC.
    pub corruptions: u64,
    /// Recovery: retransmit requests sent after a receive timed out.
    pub nacks_sent: u64,
    /// Recovery: pre-packed envelopes resent in answer to a NACK.
    pub retransmits: u64,
    /// Recovery: duplicate/reordered envelopes discarded by seq.
    pub stale_discards: u64,
    /// Recovery: envelopes rejected by the CRC32 payload check.
    pub crc_failures: u64,
    /// Terminal: receives that exhausted the retry budget.
    pub timeouts: u64,
}

impl FaultStats {
    /// Element-wise sum (for aggregating per-rank stats).
    pub fn add(&mut self, other: &FaultStats) {
        self.delays += other.delays;
        self.drops += other.drops;
        self.duplicates += other.duplicates;
        self.reorders += other.reorders;
        self.corruptions += other.corruptions;
        self.nacks_sent += other.nacks_sent;
        self.retransmits += other.retransmits;
        self.stale_discards += other.stale_discards;
        self.crc_failures += other.crc_failures;
        self.timeouts += other.timeouts;
    }

    /// Total faults injected on the send side.
    pub fn injected(&self) -> u64 {
        self.delays + self.drops + self.duplicates + self.reorders + self.corruptions
    }

    /// Total recovery actions taken on the receive side.
    pub fn recovered(&self) -> u64 {
        self.nacks_sent + self.retransmits + self.stale_discards + self.crc_failures
    }

    /// `(name, value)` pairs in a fixed order, for metrics harvesting.
    pub fn entries(&self) -> [(&'static str, u64); 10] {
        [
            ("delays", self.delays),
            ("drops", self.drops),
            ("duplicates", self.duplicates),
            ("reorders", self.reorders),
            ("corruptions", self.corruptions),
            ("nacks_sent", self.nacks_sent),
            ("retransmits", self.retransmits),
            ("stale_discards", self.stale_discards),
            ("crc_failures", self.crc_failures),
            ("timeouts", self.timeouts),
        ]
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 of a word slice, bytes in little-endian word order. Computed
/// over envelope payloads only when a fault plan is installed — the
/// fault-free hot path never pays for it.
pub fn crc32_words(words: &[u64]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &w in words {
        for b in w.to_le_bytes() {
            c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // "123456789" has CRC32 0xCBF43926 under IEEE 802.3. Pack the
        // 9 ASCII bytes into words little-endian with zero padding and
        // check a pure-byte reference against the word-based fold.
        let bytes = b"123456789";
        let mut c = 0xffff_ffffu32;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
        }
        assert_eq!(!c, 0xCBF4_3926);
        // Word-based fold: deterministic and sensitive to every byte.
        let words = [0x1122_3344_5566_7788u64, 42];
        let base = crc32_words(&words);
        assert_ne!(base, crc32_words(&[0x1122_3344_5566_7789u64, 42]));
        assert_ne!(base, crc32_words(&[0x1122_3344_5566_7788u64, 43]));
        assert_eq!(base, crc32_words(&words));
        assert_eq!(crc32_words(&[]), 0);
    }

    #[test]
    fn draws_are_pure_and_seed_sensitive() {
        let plan = FaultPlan::new(FaultConfig::recoverable(7));
        for (src, dst, seq) in [(0, 1, 0), (1, 0, 5), (3, 2, 100)] {
            assert_eq!(plan.draw(src, dst, seq), plan.draw(src, dst, seq));
        }
        // Different seeds produce different schedules (measured over a
        // window large enough that a collision of all draws is
        // impossible by construction).
        let other = FaultPlan::new(FaultConfig::recoverable(8));
        let schedule = |p: &FaultPlan| -> Vec<Option<FaultEvent>> {
            (0..512).map(|seq| p.draw(0, 1, seq)).collect()
        };
        assert_ne!(schedule(&plan), schedule(&other));
    }

    #[test]
    fn rate_is_respected_and_all_kinds_occur() {
        let plan = FaultPlan::new(FaultConfig::recoverable(42));
        let mut hit = 0usize;
        let mut kinds = std::collections::BTreeSet::new();
        let total = 16 * 1024;
        for seq in 0..total {
            for (src, dst) in [(0usize, 1usize), (1, 0)] {
                if let Some(ev) = plan.draw(src, dst, seq) {
                    hit += 1;
                    kinds.insert(format!("{:?}", ev.kind));
                    assert!(ev.delay_ms >= 1 && ev.delay_ms <= 2);
                }
            }
        }
        let rate = hit as f64 / (2.0 * total as f64);
        let expect = 32.0 / 1024.0;
        assert!(
            (rate - expect).abs() < 0.01,
            "empirical fault rate {rate} far from configured {expect}"
        );
        assert_eq!(kinds.len(), 5, "not all fault kinds drawn: {kinds:?}");
    }

    #[test]
    fn zero_rate_never_faults() {
        let mut cfg = FaultConfig::recoverable(1);
        cfg.rate_per_1024 = 0;
        let plan = FaultPlan::new(cfg);
        assert!((0..4096).all(|seq| plan.draw(0, 1, seq).is_none()));
    }

    #[test]
    fn dead_edge_is_directional_and_seq_gated() {
        let plan = FaultPlan::new(FaultConfig::unrecoverable(3, 0, 1, 10));
        assert!(!plan.edge_dead(0, 1, 9));
        assert!(plan.edge_dead(0, 1, 10));
        assert!(plan.edge_dead(0, 1, 999));
        assert!(!plan.edge_dead(1, 0, 10), "dead edge must be directed");
        assert!(!plan.edge_dead(0, 2, 10));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let p = RetryPolicy::default();
        // 10 + 20 + 40 + 80·8 = 710 ms — well inside any watchdog.
        assert_eq!(p.budget_ms(), 710);
        let tight = FaultConfig::unrecoverable(0, 0, 1, 0).policy;
        assert!(tight.budget_ms() < 200, "{}", tight.budget_ms());
    }

    #[test]
    fn flow_ids_are_injective_over_the_envelope_identity() {
        // Distinct (src, dst, tag, seq) tuples must map to distinct
        // ids — the one `s`-binds-one `f` trace invariant rests on it.
        let mut seen = std::collections::BTreeSet::new();
        for src in 0..4usize {
            for dst in 0..4usize {
                for tag in 1..=8u64 {
                    for seq in 0..32u64 {
                        assert!(seen.insert(flow_id(src, dst, tag, seq)));
                    }
                }
            }
        }
        // Field placement: direction matters, and the receiver's
        // recomputation from the envelope header matches the sender's.
        assert_ne!(flow_id(0, 1, 3, 7), flow_id(1, 0, 3, 7));
        assert_eq!(flow_id(2, 5, 4, 9), flow_id(2, 5, 4, 9));
        assert_eq!(flow_id(0, 0, 0, 0), 0);
        assert_eq!(flow_id(1, 0, 0, 0), 1 << 48);
    }

    #[test]
    fn comm_error_formats_diagnostics() {
        let e = CommError::Timeout {
            rank: 2,
            peer: 5,
            phase: "forward",
            seq: 17,
            retries: 4,
            waited_ms: 93,
        };
        let text = e.to_string();
        for needle in ["rank 2", "rank 5", "forward", "seq 17", "4 retransmit"] {
            assert!(text.contains(needle), "{text}");
        }
        assert_eq!(e.rank(), 2);
        assert_eq!(
            CommError::PeerDisconnected {
                rank: 1,
                peer: 0,
                phase: "reverse"
            }
            .rank(),
            1
        );
    }
}
