//! LAMMPS data-file input/output (`read_data` / `write_data`).
//!
//! Supports the orthogonal-box subset used by the benchmarks: the
//! header (atom/type counts, box bounds), `Masses`, `Atoms # charge`
//! (id, type, q, x, y, z) and optional `Velocities` sections. Files
//! written by [`write_data`] round-trip exactly through [`read_data`],
//! and real LAMMPS accepts them.

use crate::atom::AtomData;
use crate::domain::Domain;
use std::io::{BufRead, Write};

/// A parsed data file.
#[derive(Debug)]
pub struct DataFile {
    pub atoms: AtomData,
    pub domain: Domain,
    pub ntypes: usize,
}

/// Write the system in LAMMPS data format (atom_style charge).
pub fn write_data<W: Write>(
    out: &mut W,
    atoms: &AtomData,
    domain: &Domain,
    ntypes: usize,
) -> std::io::Result<()> {
    let n = atoms.nlocal;
    writeln!(out, "LAMMPS data file via lammps-kk\n")?;
    writeln!(out, "{n} atoms")?;
    writeln!(out, "{ntypes} atom types\n")?;
    writeln!(out, "{} {} xlo xhi", domain.lo[0], domain.hi[0])?;
    writeln!(out, "{} {} ylo yhi", domain.lo[1], domain.hi[1])?;
    writeln!(out, "{} {} zlo zhi", domain.lo[2], domain.hi[2])?;
    writeln!(out, "\nMasses\n")?;
    for (t, m) in atoms.mass.iter().enumerate().take(ntypes) {
        writeln!(out, "{} {}", t + 1, m)?;
    }
    writeln!(out, "\nAtoms # charge\n")?;
    let typ = atoms.typ.h_view();
    let q = atoms.q.h_view();
    let tag = atoms.tag.h_view();
    for i in 0..n {
        let p = atoms.pos(i);
        writeln!(
            out,
            "{} {} {} {} {} {}",
            tag.at([i]),
            typ.at([i]) + 1,
            q.at([i]),
            p[0],
            p[1],
            p[2]
        )?;
    }
    writeln!(out, "\nVelocities\n")?;
    let v = atoms.v.h_view();
    for i in 0..n {
        writeln!(
            out,
            "{} {} {} {}",
            tag.at([i]),
            v.at([i, 0]),
            v.at([i, 1]),
            v.at([i, 2])
        )?;
    }
    Ok(())
}

/// Parse a LAMMPS data file (atom_style charge subset).
pub fn read_data<R: BufRead>(input: R) -> Result<DataFile, String> {
    let mut natoms = 0usize;
    let mut ntypes = 0usize;
    let mut lo = [0.0f64; 3];
    let mut hi = [1.0f64; 3];
    let mut masses: Vec<(usize, f64)> = Vec::new();
    // tag → (type, q, x, v)
    let mut rows: Vec<(i64, i32, f64, [f64; 3])> = Vec::new();
    let mut vels: Vec<(i64, [f64; 3])> = Vec::new();

    #[derive(PartialEq)]
    enum Section {
        Header,
        Masses,
        Atoms,
        Velocities,
        Skip,
    }
    let mut section = Section::Header;
    for raw in input.lines() {
        let raw = raw.map_err(|e| e.to_string())?;
        let line = raw.split('#').next().unwrap_or("").trim().to_string();
        if line.is_empty() {
            continue;
        }
        match line.as_str() {
            "Masses" => {
                section = Section::Masses;
                continue;
            }
            "Atoms" => {
                section = Section::Atoms;
                continue;
            }
            "Velocities" => {
                section = Section::Velocities;
                continue;
            }
            _ if line.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
                && section != Section::Header =>
            {
                section = Section::Skip;
                continue;
            }
            _ => {}
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::Header => {
                if line.ends_with(" atoms") {
                    natoms = toks[0].parse().map_err(|e| format!("atoms count: {e}"))?;
                } else if line.ends_with("atom types") {
                    ntypes = toks[0].parse().map_err(|e| format!("type count: {e}"))?;
                } else if line.ends_with("xlo xhi") {
                    lo[0] = toks[0].parse().map_err(|e| format!("xlo: {e}"))?;
                    hi[0] = toks[1].parse().map_err(|e| format!("xhi: {e}"))?;
                } else if line.ends_with("ylo yhi") {
                    lo[1] = toks[0].parse().map_err(|e| format!("ylo: {e}"))?;
                    hi[1] = toks[1].parse().map_err(|e| format!("yhi: {e}"))?;
                } else if line.ends_with("zlo zhi") {
                    lo[2] = toks[0].parse().map_err(|e| format!("zlo: {e}"))?;
                    hi[2] = toks[1].parse().map_err(|e| format!("zhi: {e}"))?;
                }
            }
            Section::Masses => {
                let t: usize = toks[0].parse().map_err(|e| format!("mass type: {e}"))?;
                let m: f64 = toks[1].parse().map_err(|e| format!("mass: {e}"))?;
                masses.push((t - 1, m));
            }
            Section::Atoms => {
                if toks.len() < 6 {
                    return Err(format!("short Atoms line: '{line}'"));
                }
                let tag: i64 = toks[0].parse().map_err(|e| format!("atom id: {e}"))?;
                let t: i32 = toks[1]
                    .parse::<i32>()
                    .map_err(|e| format!("atom type: {e}"))?
                    - 1;
                let q: f64 = toks[2].parse().map_err(|e| format!("charge: {e}"))?;
                let x = [
                    toks[3].parse().map_err(|e| format!("x: {e}"))?,
                    toks[4].parse().map_err(|e| format!("y: {e}"))?,
                    toks[5].parse().map_err(|e| format!("z: {e}"))?,
                ];
                rows.push((tag, t, q, x));
            }
            Section::Velocities => {
                let tag: i64 = toks[0].parse().map_err(|e| format!("vel id: {e}"))?;
                let v = [
                    toks[1].parse().map_err(|e| format!("vx: {e}"))?,
                    toks[2].parse().map_err(|e| format!("vy: {e}"))?,
                    toks[3].parse().map_err(|e| format!("vz: {e}"))?,
                ];
                vels.push((tag, v));
            }
            Section::Skip => {}
        }
    }
    if rows.len() != natoms {
        return Err(format!("header says {natoms} atoms, found {}", rows.len()));
    }
    rows.sort_by_key(|r| r.0);
    let positions: Vec<[f64; 3]> = rows.iter().map(|r| r.3).collect();
    let mut atoms = AtomData::from_positions(&positions);
    atoms.mass = vec![1.0; ntypes.max(1)];
    for &(t, m) in &masses {
        if t < atoms.mass.len() {
            atoms.mass[t] = m;
        }
    }
    {
        let typ = atoms.typ.h_view_mut();
        for (i, r) in rows.iter().enumerate() {
            typ.set([i], r.1);
        }
        let q = atoms.q.h_view_mut();
        for (i, r) in rows.iter().enumerate() {
            q.set([i], r.2);
        }
        let tag = atoms.tag.h_view_mut();
        for (i, r) in rows.iter().enumerate() {
            tag.set([i], r.0);
        }
    }
    if !vels.is_empty() {
        // Lookup-only map (never iterated): order cannot leak (LKK002).
        #[allow(clippy::disallowed_types)]
        let index_of: std::collections::HashMap<i64, usize> =
            rows.iter().enumerate().map(|(i, r)| (r.0, i)).collect();
        let v = atoms.v.h_view_mut();
        for (tag, vel) in vels {
            let &i = index_of
                .get(&tag)
                .ok_or_else(|| format!("velocity for unknown atom {tag}"))?;
            for (k, &vk) in vel.iter().enumerate() {
                v.set([i, k], vk);
            }
        }
    }
    Ok(DataFile {
        atoms,
        domain: Domain::new(lo, hi),
        ntypes: ntypes.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{create_velocities, Lattice, LatticeKind};
    use crate::units::Units;

    fn sample() -> (AtomData, Domain) {
        let lat = Lattice::from_density(LatticeKind::Fcc, 0.8442);
        let mut atoms = AtomData::from_positions(&lat.positions(2, 2, 2));
        atoms.mass = vec![39.95, 1.0];
        atoms.typ.h_view_mut().set([3], 1);
        atoms.q.h_view_mut().set([5], -0.42);
        create_velocities(&mut atoms, &Units::lj(), 1.0, 7);
        (atoms, lat.domain(2, 2, 2))
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (atoms, domain) = sample();
        let mut buf = Vec::new();
        write_data(&mut buf, &atoms, &domain, 2).unwrap();
        let parsed = read_data(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.atoms.nlocal, atoms.nlocal);
        assert_eq!(parsed.ntypes, 2);
        assert_eq!(parsed.domain, domain);
        assert_eq!(parsed.atoms.mass, atoms.mass);
        for i in 0..atoms.nlocal {
            assert_eq!(parsed.atoms.pos(i), atoms.pos(i));
            assert_eq!(
                parsed.atoms.typ.h_view().at([i]),
                atoms.typ.h_view().at([i])
            );
            assert_eq!(parsed.atoms.q.h_view().at([i]), atoms.q.h_view().at([i]));
            for k in 0..3 {
                assert_eq!(
                    parsed.atoms.v.h_view().at([i, k]),
                    atoms.v.h_view().at([i, k])
                );
            }
        }
    }

    #[test]
    fn atoms_are_reordered_by_tag() {
        let text = "\
test

2 atoms
1 atom types

0.0 4.0 xlo xhi
0.0 4.0 ylo yhi
0.0 4.0 zlo zhi

Masses

1 12.0

Atoms # charge

2 1 0.5 1.0 1.0 1.0
1 1 -0.5 2.0 2.0 2.0
";
        let parsed = read_data(std::io::BufReader::new(text.as_bytes())).unwrap();
        // Row 0 is tag 1.
        assert_eq!(parsed.atoms.tag.h_view().at([0]), 1);
        assert_eq!(parsed.atoms.pos(0), [2.0, 2.0, 2.0]);
        assert_eq!(parsed.atoms.q.h_view().at([0]), -0.5);
        assert_eq!(parsed.atoms.mass[0], 12.0);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let text = "t\n\n3 atoms\n1 atom types\n0 1 xlo xhi\n0 1 ylo yhi\n0 1 zlo zhi\n\nAtoms # charge\n\n1 1 0.0 0.5 0.5 0.5\n";
        assert!(read_data(std::io::BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn unknown_sections_are_skipped() {
        let text = "t\n\n1 atoms\n1 atom types\n0 1 xlo xhi\n0 1 ylo yhi\n0 1 zlo zhi\n\nBonds\n\n1 1 1 2\n\nAtoms # charge\n\n1 1 0.0 0.5 0.5 0.5\n";
        let parsed = read_data(std::io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(parsed.atoms.nlocal, 1);
    }
}
