//! Energy minimization: the FIRE algorithm (Fast Inertial Relaxation
//! Engine, Bitzek et al. 2006) — LAMMPS' `min_style fire`.
//!
//! FIRE is MD with two modifications: the velocity is continuously
//! steered toward the force direction, and the timestep adapts — it
//! grows while the system keeps moving downhill (`P = F·v > 0`) and
//! collapses (with the velocity zeroed) on any uphill step.

use crate::atom::Mask;
use crate::sim::Simulation;
use lkk_kokkos::Space;

/// FIRE hyper-parameters (the published defaults).
#[derive(Debug, Clone, Copy)]
pub struct FireParams {
    pub dt_start: f64,
    pub dt_max_factor: f64,
    pub n_min: u32,
    pub f_inc: f64,
    pub f_dec: f64,
    pub alpha_start: f64,
    pub f_alpha: f64,
}

impl Default for FireParams {
    fn default() -> Self {
        FireParams {
            dt_start: 0.005,
            dt_max_factor: 10.0,
            n_min: 5,
            f_inc: 1.1,
            f_dec: 0.5,
            alpha_start: 0.1,
            f_alpha: 0.99,
        }
    }
}

/// Result of a minimization.
#[derive(Debug, Clone, Copy)]
pub struct MinResult {
    pub iterations: u64,
    pub converged: bool,
    /// Max force component at exit.
    pub fmax: f64,
    pub energy: f64,
}

impl Simulation {
    /// Relax the system with FIRE until the max force component drops
    /// below `ftol` or `max_iter` iterations elapse. Uses the
    /// simulation's neighbor machinery; velocities are consumed
    /// (zeroed at uphill steps) and left in the damped state.
    pub fn minimize_fire(&mut self, ftol: f64, max_iter: u64) -> MinResult {
        let params = FireParams {
            dt_start: self.dt,
            ..Default::default()
        };
        self.setup();
        let mut dt = params.dt_start;
        let dt_max = params.dt_start * params.dt_max_factor;
        let mut alpha = params.alpha_start;
        let mut n_pos = 0u32;
        let mut iterations = 0;
        let mut fmax = f64::INFINITY;
        while iterations < max_iter {
            iterations += 1;
            self.system.atoms.sync(&Space::Serial, Mask::V | Mask::F);
            let n = self.system.atoms.nlocal;
            // P = F·v, |F|, |v|, fmax.
            let (mut p, mut fsq, mut vsq) = (0.0f64, 0.0f64, 0.0f64);
            fmax = 0.0;
            {
                let vh = self.system.atoms.v.h_view();
                let fh = self.system.atoms.f.h_view();
                for i in 0..n {
                    for k in 0..3 {
                        let (f, v) = (fh.at([i, k]), vh.at([i, k]));
                        p += f * v;
                        fsq += f * f;
                        vsq += v * v;
                        fmax = fmax.max(f.abs());
                    }
                }
            }
            if fmax < ftol {
                return MinResult {
                    iterations,
                    converged: true,
                    fmax,
                    energy: self.last_results.energy,
                };
            }
            // Velocity steering: v ← (1−α)v + α·|v|·F̂.
            let fnorm = fsq.sqrt().max(1e-300);
            let vnorm = vsq.sqrt();
            {
                let mix = alpha * vnorm / fnorm;
                let fs: Vec<f64> = {
                    let fh = self.system.atoms.f.h_view();
                    (0..n)
                        .flat_map(|i| (0..3).map(move |k| (i, k)))
                        .map(|(i, k)| fh.at([i, k]))
                        .collect()
                };
                let vh = self.system.atoms.v.h_view_mut();
                for i in 0..n {
                    for k in 0..3 {
                        let v = (1.0 - alpha) * vh.at([i, k]) + mix * fs[i * 3 + k];
                        vh.set([i, k], v);
                    }
                }
            }
            if p > 0.0 {
                n_pos += 1;
                if n_pos > params.n_min {
                    dt = (dt * params.f_inc).min(dt_max);
                    alpha *= params.f_alpha;
                }
            } else {
                n_pos = 0;
                dt *= params.f_dec;
                alpha = params.alpha_start;
                // Kill the uphill motion.
                let vh = self.system.atoms.v.h_view_mut();
                for i in 0..n {
                    for k in 0..3 {
                        vh.set([i, k], 0.0);
                    }
                }
            }
            self.system.atoms.modified(&Space::Serial, Mask::V);
            // One velocity-Verlet step at the adapted dt.
            let saved_dt = self.dt;
            self.dt = dt;
            self.run(1);
            self.dt = saved_dt;
        }
        MinResult {
            iterations,
            converged: false,
            fmax,
            energy: self.last_results.energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::atom::AtomData;
    use crate::lattice::{Lattice, LatticeKind};
    use crate::pair::lj::LjCut;
    use crate::pair::PairKokkos;
    use crate::sim::{Simulation, System};
    use lkk_kokkos::Space;

    #[test]
    fn fire_relaxes_perturbed_lattice() {
        // Perturb an fcc LJ crystal and let FIRE pull it back to the
        // lattice minimum.
        let lat = Lattice::from_density(LatticeKind::Fcc, 1.0);
        let perturbed: Vec<[f64; 3]> = lat
            .positions(3, 3, 3)
            .iter()
            .enumerate()
            .map(|(i, p)| {
                [
                    p[0] + 0.08 * (((i * 7) % 13) as f64 / 13.0 - 0.5),
                    p[1] + 0.08 * (((i * 11) % 17) as f64 / 17.0 - 0.5),
                    p[2] + 0.08 * (((i * 5) % 19) as f64 / 19.0 - 0.5),
                ]
            })
            .collect();
        let space = Space::Threads;
        let system = System::new(
            AtomData::from_positions(&perturbed),
            lat.domain(4, 4, 4),
            space.clone(),
        );
        let pair = PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &space);
        let mut sim = Simulation::new(system, Box::new(pair));
        sim.dt = 0.002;
        sim.setup();
        let e_start = sim.last_results.energy;
        let result = sim.minimize_fire(1e-6, 4000);
        assert!(
            result.converged,
            "fmax {} after {}",
            result.fmax, result.iterations
        );
        assert!(result.energy < e_start, "{} !< {e_start}", result.energy);
        // The relaxed structure has essentially zero residual force.
        assert!(result.fmax < 1e-6);
    }

    #[test]
    fn fire_is_a_noop_on_a_perfect_lattice() {
        let lat = Lattice::from_density(LatticeKind::Fcc, 1.0);
        let space = Space::Serial;
        let system = System::new(
            AtomData::from_positions(&lat.positions(4, 4, 4)),
            lat.domain(4, 4, 4),
            space.clone(),
        );
        let pair = PairKokkos::new(LjCut::single_type(1.0, 1.0, 2.5), &space);
        let mut sim = Simulation::new(system, Box::new(pair));
        let result = sim.minimize_fire(1e-8, 100);
        assert!(result.converged);
        assert_eq!(result.iterations, 1);
    }
}
