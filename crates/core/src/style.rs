//! The style registry: input-script command names → C++-class-like
//! factories (§2.1), with accelerator-package *suffix* resolution
//! (§3.1).
//!
//! Non-accelerated styles are registered under their plain name
//! (`lj/cut`) and execute serially on the host, like base LAMMPS.
//! KOKKOS-package styles register the same name with the `/kk` suffix
//! and are templated on the execution space: the user can pick
//! `lj/cut/kk/host` or `lj/cut/kk/device` explicitly, or set a global
//! suffix so every style that has an accelerated variant uses it.

use crate::pair::eam::{EamParams, PairEam};
use crate::pair::lj::LjCut;
use crate::pair::morse::Morse;
use crate::pair::sw::{PairSw, SwParams};
use crate::pair::yukawa::Yukawa;
use crate::pair::{PairKokkos, PairStyle};
use lkk_kokkos::Space;
use std::collections::BTreeMap;

/// Everything a pair-style factory needs: the `pair_style` arguments
/// and the accumulated `pair_coeff` lines.
#[derive(Debug, Clone, Default)]
pub struct PairSpec {
    /// Arguments after the style name in `pair_style`.
    pub style_args: Vec<String>,
    /// One entry per `pair_coeff` command (tokenized).
    pub coeffs: Vec<Vec<String>>,
    /// Number of atom types in the system.
    pub ntypes: usize,
}

impl PairSpec {
    pub fn arg_f64(&self, i: usize) -> Result<f64, String> {
        self.style_args
            .get(i)
            .ok_or_else(|| format!("missing pair_style argument {i}"))?
            .parse()
            .map_err(|e| format!("bad pair_style argument {i}: {e}"))
    }
}

type PairFactory =
    Box<dyn Fn(&PairSpec, &Space) -> Result<Box<dyn PairStyle>, String> + Send + Sync>;

/// Name → factory maps for each style category.
pub struct StyleRegistry {
    pairs: BTreeMap<String, PairFactory>,
}

impl StyleRegistry {
    /// Registry with the core styles (`lj/cut`, `morse`, `yukawa`) in
    /// both plain and `/kk` forms. Potential crates (`lkk-snap`,
    /// `lkk-reaxff`) extend this via [`StyleRegistry::register_pair`].
    pub fn core() -> Self {
        let mut reg = StyleRegistry {
            pairs: BTreeMap::new(),
        };
        reg.register_pair("lj/cut", make_lj);
        reg.register_pair("morse", make_morse);
        reg.register_pair("yukawa", make_yukawa);
        reg.register_pair("eam", make_eam);
        reg.register_pair("sw", make_sw);
        reg
    }

    /// Register a pair style under `name` and `name/kk`: LAMMPS uses
    /// "the same macro" for both, with the suffix convention (§3.1).
    pub fn register_pair<F>(&mut self, name: &str, factory: F)
    where
        F: Fn(&PairSpec, &Space) -> Result<Box<dyn PairStyle>, String>
            + Send
            + Sync
            + Clone
            + 'static,
    {
        self.pairs
            .insert(name.to_string(), Box::new(factory.clone()));
        self.pairs.insert(format!("{name}/kk"), Box::new(factory));
    }

    /// Resolve a style name under an optional global suffix and create
    /// it. Suffix resolution order matches LAMMPS: `name/suffix` if
    /// registered, else plain `name`. `/kk/host` and `/kk/device`
    /// override the execution space; plain `/kk` keeps `space`.
    pub fn create_pair(
        &self,
        name: &str,
        spec: &PairSpec,
        space: &Space,
        global_suffix: Option<&str>,
    ) -> Result<Box<dyn PairStyle>, String> {
        // Explicit per-style space override.
        let (base, forced_space) = if let Some(b) = name.strip_suffix("/kk/host") {
            (format!("{b}/kk"), Some(Space::Threads))
        } else if let Some(b) = name.strip_suffix("/kk/device") {
            (format!("{b}/kk"), None)
        } else {
            (name.to_string(), None)
        };
        let mut resolved = base.clone();
        if !resolved.ends_with("/kk") {
            if let Some(sfx) = global_suffix {
                let candidate = format!("{resolved}/{sfx}");
                if self.pairs.contains_key(&candidate) {
                    resolved = candidate;
                }
            }
        }
        let factory = self
            .pairs
            .get(&resolved)
            .ok_or_else(|| format!("unknown pair style '{resolved}'"))?;
        // Plain (non-/kk) styles run like base LAMMPS: serial host.
        let space = if resolved.ends_with("/kk") {
            forced_space.unwrap_or_else(|| space.clone())
        } else {
            Space::Serial
        };
        let mut style = factory(spec, &space)?;
        style.set_name(&resolved);
        Ok(style)
    }

    /// All registered pair style names, sorted.
    pub fn pair_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.pairs.keys().cloned().collect();
        v.sort();
        v
    }
}

fn make_lj(spec: &PairSpec, space: &Space) -> Result<Box<dyn PairStyle>, String> {
    let default_cut = spec.arg_f64(0)?;
    let ntypes = spec.ntypes.max(1);
    let mut lj = LjCut::new(ntypes);
    if spec.coeffs.is_empty() {
        return Err("pair lj/cut: no pair_coeff given".into());
    }
    for c in &spec.coeffs {
        let ti: usize = c[0].parse::<usize>().map_err(|e| e.to_string())? - 1;
        let tj: usize = c[1].parse::<usize>().map_err(|e| e.to_string())? - 1;
        let eps: f64 = c[2].parse().map_err(|_| "bad epsilon")?;
        let sig: f64 = c[3].parse().map_err(|_| "bad sigma")?;
        let cut = if c.len() > 4 {
            c[4].parse().map_err(|_| "bad cutoff")?
        } else {
            default_cut
        };
        if ti >= ntypes || tj >= ntypes {
            return Err(format!(
                "pair_coeff type out of range: {} {}",
                ti + 1,
                tj + 1
            ));
        }
        lj.set_coeff(ti, tj, eps, sig, cut);
    }
    Ok(Box::new(PairKokkos::new(lj, space)))
}

fn make_morse(spec: &PairSpec, space: &Space) -> Result<Box<dyn PairStyle>, String> {
    let cut = spec.arg_f64(0)?;
    let c = spec
        .coeffs
        .first()
        .ok_or("pair morse: no pair_coeff given")?;
    let d0: f64 = c[2].parse().map_err(|_| "bad D0")?;
    let alpha: f64 = c[3].parse().map_err(|_| "bad alpha")?;
    let r0: f64 = c[4].parse().map_err(|_| "bad r0")?;
    Ok(Box::new(PairKokkos::new(
        Morse::new(d0, alpha, r0, cut),
        space,
    )))
}

fn make_eam(_spec: &PairSpec, _space: &Space) -> Result<Box<dyn PairStyle>, String> {
    Ok(Box::new(PairEam::new(EamParams::default())))
}

fn make_sw(_spec: &PairSpec, _space: &Space) -> Result<Box<dyn PairStyle>, String> {
    Ok(Box::new(PairSw::new(SwParams::default())))
}

fn make_yukawa(spec: &PairSpec, space: &Space) -> Result<Box<dyn PairStyle>, String> {
    let kappa = spec.arg_f64(0)?;
    let cut = spec.arg_f64(1)?;
    let c = spec
        .coeffs
        .first()
        .ok_or("pair yukawa: no pair_coeff given")?;
    let a: f64 = c[2].parse().map_err(|_| "bad A")?;
    Ok(Box::new(PairKokkos::new(Yukawa::new(a, kappa, cut), space)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lj_spec() -> PairSpec {
        PairSpec {
            style_args: vec!["2.5".into()],
            coeffs: vec![vec!["1".into(), "1".into(), "1.0".into(), "1.0".into()]],
            ntypes: 1,
        }
    }

    #[test]
    fn plain_style_runs_serial_host() {
        let reg = StyleRegistry::core();
        let p = reg
            .create_pair("lj/cut", &lj_spec(), &Space::Threads, None)
            .unwrap();
        assert_eq!(p.name(), "lj/cut");
        // Plain style defaults to half list (CPU heuristic).
        assert!(p.wants_half_list());
    }

    #[test]
    fn global_suffix_selects_kk_variant() {
        let reg = StyleRegistry::core();
        let dev = Space::device(lkk_gpusim::GpuArch::h100());
        let p = reg
            .create_pair("lj/cut", &lj_spec(), &dev, Some("kk"))
            .unwrap();
        assert_eq!(p.name(), "lj/cut/kk");
        // Device default: full list.
        assert!(!p.wants_half_list());
    }

    #[test]
    fn explicit_host_suffix_overrides_space() {
        let reg = StyleRegistry::core();
        let dev = Space::device(lkk_gpusim::GpuArch::h100());
        let p = reg
            .create_pair("lj/cut/kk/host", &lj_spec(), &dev, None)
            .unwrap();
        // Host execution → half list heuristic.
        assert!(p.wants_half_list());
    }

    #[test]
    fn unknown_style_is_an_error() {
        let reg = StyleRegistry::core();
        assert!(reg
            .create_pair("eam/alloy", &lj_spec(), &Space::Serial, None)
            .is_err());
    }

    #[test]
    fn suffix_fallback_when_no_kk_variant() {
        let mut reg = StyleRegistry::core();
        // Register a style with no /kk variant by inserting directly.
        reg.pairs.insert(
            "plain/only".into(),
            Box::new(|spec: &PairSpec, space: &Space| make_lj(spec, space)),
        );
        let p = reg
            .create_pair("plain/only", &lj_spec(), &Space::Threads, Some("kk"))
            .unwrap();
        // Fell back to the plain variant without error (and was
        // renamed to its resolved registry key).
        assert_eq!(p.name(), "plain/only");
    }

    #[test]
    fn registry_lists_both_forms() {
        let reg = StyleRegistry::core();
        let names = reg.pair_names();
        assert!(names.contains(&"lj/cut".to_string()));
        assert!(names.contains(&"lj/cut/kk".to_string()));
        assert!(names.contains(&"morse/kk".to_string()));
        assert!(names.contains(&"yukawa".to_string()));
        assert!(names.contains(&"eam/kk".to_string()));
        assert!(names.contains(&"sw/kk".to_string()));
    }
}
