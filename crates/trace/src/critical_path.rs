//! Critical-path extraction and time attribution over the collected
//! per-lane timelines.
//!
//! The collector records each rank thread as an independent lane of
//! nested spans, and the comm layer stamps every envelope transmission
//! with a flow begin on the sender lane and a flow end on the receiver
//! lane (same 64-bit id — see `lkk_core::comm::fault::flow_id`). That
//! is exactly the information needed to answer the scaling question the
//! paper's strong-scaling figures raise: *which rank, in which phase,
//! is the step actually waiting on?*
//!
//! The analyzer works per step (spans named `step`, matched by index
//! across lanes — the exchanges are bulk-synchronous so step `k` on one
//! rank can only communicate with step `k` on another):
//!
//! 1. Each lane's step interval is tiled into *segments*: at every
//!    span push/pop inside the step the innermost open span changes,
//!    and the segment between two such boundaries belongs to that span.
//!    Segments classify into buckets by their leaf span — `pack`/`send`
//!    → **pack**, `recv`/`reclaim` → **wire-wait** (or **retry** when a
//!    `comm.fault.*` recovery instant fired inside the segment),
//!    `unpack` → **unpack**, everything else → **compute**.
//! 2. Segments form a DAG: consecutive segments on one lane are
//!    chained, and every flow whose begin and end land in the same step
//!    adds a cross-lane edge from the sending segment to the accepting
//!    segment. The exchanges' send-all-then-receive-all schedule makes
//!    this graph acyclic; the longest node-weighted path through it is
//!    the step's critical path.
//! 3. Per lane, the bucket sums are closed exactly: compute is defined
//!    by subtraction from the lane's step span, and the *slack* bucket
//!    absorbs the difference between the lane and the slowest lane —
//!    so `compute + pack + wire_wait + unpack + retry + slack` equals
//!    the step's total time identically (integer tick arithmetic in
//!    deterministic mode), which `tests/trace_schema.rs` pins.
//!
//! The resulting [`CriticalPathReport`] renders as canonical JSON
//! (sorted keys, shortest round-trip numbers) so the `perf-smoke
//! --report` harness can byte-gate it like the perf/metrics baselines.

use crate::collector::{Event, EventKind, TraceCollector, TraceMode};
use crate::{push_json_num, push_json_string};
use std::collections::BTreeMap;

/// Attribution bucket of one timeline segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    Compute,
    Pack,
    WireWait,
    Unpack,
    Retry,
}

impl Bucket {
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Compute => "compute",
            Bucket::Pack => "pack",
            Bucket::WireWait => "wire_wait",
            Bucket::Unpack => "unpack",
            Bucket::Retry => "retry",
        }
    }
}

/// One segment on a step's critical path.
#[derive(Debug, Clone)]
pub struct PathSpan {
    /// Lane (rank) name the segment ran on.
    pub lane: String,
    /// Step index (0-based over the lane's `step` spans, warmup
    /// included).
    pub step: usize,
    /// `/`-joined span path below the step (`"step"` for the gaps
    /// between child spans).
    pub name: String,
    pub bucket: Bucket,
    /// Duration in the collector's clock (ticks or µs).
    pub duration: f64,
}

/// Per-rank time attribution summed over all steps. The six buckets
/// sum exactly to [`CriticalPathReport::total_time`] on every rank.
#[derive(Debug, Clone)]
pub struct RankAttribution {
    pub lane: String,
    pub compute: f64,
    pub pack: f64,
    pub wire_wait: f64,
    pub unpack: f64,
    pub retry: f64,
    /// Imbalance slack: time this rank spent finished-but-waiting for
    /// the slowest rank of each step.
    pub slack: f64,
}

impl RankAttribution {
    pub fn total(&self) -> f64 {
        self.compute + self.pack + self.wire_wait + self.unpack + self.retry + self.slack
    }

    /// `(name, value)` pairs in canonical render order.
    pub fn entries(&self) -> [(&'static str, f64); 6] {
        [
            ("compute", self.compute),
            ("pack", self.pack),
            ("wire_wait", self.wire_wait),
            ("unpack", self.unpack),
            ("retry", self.retry),
            ("slack", self.slack),
        ]
    }
}

/// One step's critical path.
#[derive(Debug, Clone)]
pub struct StepSummary {
    pub index: usize,
    /// Slowest lane's step duration — the step's wall contribution.
    pub total: f64,
    /// Weight of the longest path through the step DAG.
    pub critical: f64,
    /// The longest path, in execution order.
    pub path: Vec<PathSpan>,
}

/// The full analysis: per-rank attribution, per-step critical paths,
/// and flow accounting. Canonical-JSON-serializable for baseline
/// gating.
#[derive(Debug, Clone)]
pub struct CriticalPathReport {
    /// `"ticks"` (deterministic) or `"us"` (wall).
    pub clock: &'static str,
    /// Rank lanes analyzed.
    pub lanes: Vec<String>,
    /// Steps seen (max over lanes; lockstep runs agree).
    pub nsteps: usize,
    /// Σ over steps of the slowest lane's step duration.
    pub total_time: f64,
    /// Σ over steps of the longest-path weight. In deterministic mode
    /// each lane's tick clock counts only its own events, so segments
    /// on different lanes are not aligned on a shared axis and a path
    /// that hops lanes through a flow edge can weigh *more* than the
    /// slowest single lane — `critical_time` may exceed
    /// [`total_time`](Self::total_time). Compare the two as a
    /// cross-lane-coupling indicator, not as a utilization ratio.
    pub critical_time: f64,
    /// Flows with exactly one begin and one end recorded.
    pub flows_complete: u64,
    /// Flow ids with a missing or duplicated endpoint (dead-edge drops).
    pub flows_dangling: u64,
    /// Complete flows per phase tag.
    pub flows_by_tag: BTreeMap<String, u64>,
    pub ranks: Vec<RankAttribution>,
    pub steps: Vec<StepSummary>,
}

impl CriticalPathReport {
    /// The `n` longest critical-path segments across all steps,
    /// deterministically ordered (duration descending, then step, lane,
    /// name ascending).
    pub fn top_spans(&self, n: usize) -> Vec<&PathSpan> {
        let mut all: Vec<&PathSpan> = self.steps.iter().flat_map(|s| s.path.iter()).collect();
        all.sort_by(|a, b| {
            b.duration
                .total_cmp(&a.duration)
                .then(a.step.cmp(&b.step))
                .then(a.lane.cmp(&b.lane))
                .then(a.name.cmp(&b.name))
        });
        all.truncate(n);
        all
    }

    /// Canonical JSON: fixed key order, sorted rank keys, shortest
    /// round-trip numbers — byte-identical across deterministic runs.
    /// Embeds the top-5 critical-path spans; per-step detail stays on
    /// the struct.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": 1,\n  \"clock\": ");
        push_json_string(&mut out, self.clock);
        out.push_str(&format!(
            ",\n  \"lanes\": {},\n  \"steps\": {},\n  \"total_time\": ",
            self.lanes.len(),
            self.nsteps
        ));
        push_json_num(&mut out, self.total_time);
        out.push_str(",\n  \"critical_time\": ");
        push_json_num(&mut out, self.critical_time);
        out.push_str(&format!(
            ",\n  \"flows\": {{\"complete\": {}, \"dangling\": {}, \"by_tag\": {{",
            self.flows_complete, self.flows_dangling
        ));
        for (i, (tag, n)) in self.flows_by_tag.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_json_string(&mut out, tag);
            out.push_str(&format!(": {n}"));
        }
        out.push_str("}},\n  \"ranks\": {");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, &r.lane);
            out.push_str(": {");
            for (j, (name, v)) in r.entries().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                out.push_str(name);
                out.push_str("\": ");
                push_json_num(&mut out, *v);
            }
            out.push_str(", \"total\": ");
            push_json_num(&mut out, r.total());
            out.push('}');
        }
        if !self.ranks.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"top_spans\": [");
        let top = self.top_spans(5);
        for (i, s) in top.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"lane\": ");
            push_json_string(&mut out, &s.lane);
            out.push_str(&format!(", \"step\": {}, \"name\": ", s.step));
            push_json_string(&mut out, &s.name);
            out.push_str(", \"bucket\": \"");
            out.push_str(s.bucket.name());
            out.push_str("\", \"duration\": ");
            push_json_num(&mut out, s.duration);
            out.push('}');
        }
        if top.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

// ---------------------------------------------------------------------
// Lane decomposition
// ---------------------------------------------------------------------

/// One tiled segment of a step interval.
struct Seg {
    path: String,
    start: f64,
    end: f64,
    bucket: Bucket,
}

/// One `step` span on one lane, tiled into segments.
struct LaneStep {
    start: f64,
    end: f64,
    segs: Vec<Seg>,
}

struct LaneAnalysis {
    name: String,
    steps: Vec<LaneStep>,
}

/// A flow endpoint resolved to its (lane, step, segment) node.
struct FlowEndpoint {
    lane: usize,
    step: usize,
    seg: usize,
}

fn bucket_of(leaf: &str) -> Bucket {
    match leaf {
        "pack" | "send" => Bucket::Pack,
        "recv" | "reclaim" => Bucket::WireWait,
        "unpack" => Bucket::Unpack,
        _ => Bucket::Compute,
    }
}

fn ts_of(ev: &Event, mode: TraceMode) -> f64 {
    match mode {
        TraceMode::Deterministic => ev.ts_det,
        TraceMode::Wall => ev.ts_wall,
    }
}

/// Walk one lane's event stream, reconstructing the span tree with the
/// same repair rules as the Chrome exporter (unmatched pops dropped,
/// open spans closed at the last timestamp + 1), tiling every `step`
/// span and resolving flow endpoints to segment indices.
fn analyze_lane(
    lane_idx: usize,
    name: &str,
    events: &[Event],
    mode: TraceMode,
    flows_out: &mut BTreeMap<u64, Vec<FlowEndpoint>>,
    flows_in: &mut BTreeMap<u64, Vec<FlowEndpoint>>,
) -> LaneAnalysis {
    let mut stack: Vec<String> = Vec::new();
    // Stack depth at which the open `step` span sits (its own slot).
    let mut step_depth: Option<usize> = None;
    let mut steps: Vec<LaneStep> = Vec::new();
    let mut cur: Option<LaneStep> = None;
    let mut seg_start = 0.0_f64;
    let mut seg_fault = false;
    let mut last_ts = 0.0_f64;

    // Close the segment under construction at `ts` and start the next.
    let close_seg = |stack: &[String],
                     depth: usize,
                     cur: &mut Option<LaneStep>,
                     seg_start: &mut f64,
                     seg_fault: &mut bool,
                     ts: f64| {
        let below = &stack[depth..];
        let path = if below.is_empty() {
            "step".to_string()
        } else {
            below.join("/")
        };
        let leaf = below.last().map_or("step", |s| s.as_str());
        let mut bucket = bucket_of(leaf);
        if *seg_fault && matches!(bucket, Bucket::WireWait | Bucket::Pack) {
            bucket = Bucket::Retry;
        }
        cur.as_mut().unwrap().segs.push(Seg {
            path,
            start: *seg_start,
            end: ts,
            bucket,
        });
        *seg_start = ts;
        *seg_fault = false;
    };

    for ev in events {
        let ts = ts_of(ev, mode);
        last_ts = last_ts.max(ts);
        match &ev.kind {
            EventKind::Begin(name) => {
                if let Some(depth) = step_depth {
                    close_seg(&stack, depth, &mut cur, &mut seg_start, &mut seg_fault, ts);
                }
                stack.push(name.clone());
                if step_depth.is_none() && name == "step" {
                    step_depth = Some(stack.len());
                    cur = Some(LaneStep {
                        start: ts,
                        end: ts,
                        segs: Vec::new(),
                    });
                    seg_start = ts;
                    seg_fault = false;
                }
            }
            EventKind::End(_) => {
                if stack.is_empty() {
                    continue; // repair: unmatched pop
                }
                if let Some(depth) = step_depth {
                    close_seg(&stack, depth, &mut cur, &mut seg_start, &mut seg_fault, ts);
                    if stack.len() == depth {
                        // The step span itself is closing.
                        let mut s = cur.take().unwrap();
                        s.end = ts;
                        steps.push(s);
                        step_depth = None;
                    }
                }
                stack.pop();
            }
            EventKind::Instant { name, .. } => {
                if step_depth.is_some() && name.starts_with("comm.fault.") {
                    seg_fault = true;
                }
            }
            EventKind::FlowBegin { id, .. } => {
                if let Some(cur) = &cur {
                    flows_out.entry(*id).or_default().push(FlowEndpoint {
                        lane: lane_idx,
                        step: steps.len(),
                        seg: cur.segs.len(),
                    });
                }
            }
            EventKind::FlowEnd { id, .. } => {
                if let Some(cur) = &cur {
                    flows_in.entry(*id).or_default().push(FlowEndpoint {
                        lane: lane_idx,
                        step: steps.len(),
                        seg: cur.segs.len(),
                    });
                }
            }
            EventKind::Counter { .. } | EventKind::Launch { .. } => {}
        }
    }
    // Repair: a step still open at the end closes at last_ts + 1 (the
    // same synthetic close the Chrome exporter emits).
    if let Some(depth) = step_depth {
        let ts = last_ts + 1.0;
        close_seg(&stack, depth, &mut cur, &mut seg_start, &mut seg_fault, ts);
        let mut s = cur.take().unwrap();
        s.end = ts;
        steps.push(s);
    }
    LaneAnalysis {
        name: name.to_string(),
        steps,
    }
}

// ---------------------------------------------------------------------
// Longest path
// ---------------------------------------------------------------------

/// Longest node-weighted path through one step's segment DAG. Nodes are
/// `(lane, seg)`; predecessors are the previous segment on the same
/// lane plus any same-step flow senders. Memoized iterative DFS; a
/// defensive in-progress check breaks cycles (impossible under the
/// send-all-then-receive-all schedule, but an analyzer must not hang on
/// a malformed trace).
fn longest_path(
    lanes: &[&LaneStep],
    flow_preds: &BTreeMap<(usize, usize), Vec<(usize, usize)>>,
) -> (f64, Vec<(usize, usize)>) {
    let weight = |(l, s): (usize, usize)| -> f64 {
        let seg = &lanes[l].segs[s];
        seg.end - seg.start
    };
    let preds = |(l, s): (usize, usize)| -> Vec<(usize, usize)> {
        let mut p = Vec::new();
        if s > 0 {
            p.push((l, s - 1));
        }
        if let Some(fp) = flow_preds.get(&(l, s)) {
            p.extend(fp.iter().copied());
        }
        p
    };

    let mut dp: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut best_pred: BTreeMap<(usize, usize), Option<(usize, usize)>> = BTreeMap::new();
    // 1 = in progress, 2 = done (absent = unvisited).
    let mut state: BTreeMap<(usize, usize), u8> = BTreeMap::new();

    let nodes: Vec<(usize, usize)> = lanes
        .iter()
        .enumerate()
        .flat_map(|(l, ls)| (0..ls.segs.len()).map(move |s| (l, s)))
        .collect();

    for &start in &nodes {
        if state.get(&start) == Some(&2) {
            continue;
        }
        let mut stack = vec![start];
        while let Some(&n) = stack.last() {
            match state.get(&n).copied() {
                Some(2) => {
                    stack.pop();
                }
                Some(1) => {
                    let mut best = 0.0_f64;
                    let mut bp = None;
                    for p in preds(n) {
                        if state.get(&p) == Some(&2) && dp[&p] > best {
                            best = dp[&p];
                            bp = Some(p);
                        }
                    }
                    dp.insert(n, best + weight(n));
                    best_pred.insert(n, bp);
                    state.insert(n, 2);
                    stack.pop();
                }
                _ => {
                    state.insert(n, 1);
                    for p in preds(n) {
                        if !state.contains_key(&p) {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }

    let mut best_end: Option<(usize, usize)> = None;
    for &n in &nodes {
        if best_end.is_none() || dp[&n] > dp[&best_end.unwrap()] {
            best_end = Some(n);
        }
    }
    let Some(mut node) = best_end else {
        return (0.0, Vec::new());
    };
    let total = dp[&node];
    let mut path = vec![node];
    while let Some(Some(p)) = best_pred.get(&node) {
        node = *p;
        path.push(node);
    }
    path.reverse();
    (total, path)
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

impl TraceCollector {
    /// Analyze the collected rank lanes: per-step critical paths,
    /// per-rank bucket attribution, and flow accounting. Lanes that are
    /// not rank lanes (`host`, device) do not participate.
    pub fn critical_path(&self) -> CriticalPathReport {
        let mode = self.mode();
        let lanes = self.sorted_lanes();

        // Global flow balance scan (all lanes, steps or not).
        let mut flow_counts: BTreeMap<u64, (u64, u64, String)> = BTreeMap::new();
        for lane in &lanes {
            let d = lane.data.lock().unwrap();
            for ev in &d.events {
                match &ev.kind {
                    EventKind::FlowBegin { id, name } => {
                        let e = flow_counts
                            .entry(*id)
                            .or_insert_with(|| (0, 0, name.clone()));
                        e.0 += 1;
                    }
                    EventKind::FlowEnd { id, name } => {
                        let e = flow_counts
                            .entry(*id)
                            .or_insert_with(|| (0, 0, name.clone()));
                        e.1 += 1;
                    }
                    _ => {}
                }
            }
        }
        let mut flows_complete = 0u64;
        let mut flows_dangling = 0u64;
        let mut flows_by_tag: BTreeMap<String, u64> = BTreeMap::new();
        for (s, f, tag) in flow_counts.values() {
            if (*s, *f) == (1, 1) {
                flows_complete += 1;
                *flows_by_tag.entry(tag.clone()).or_insert(0) += 1;
            } else {
                flows_dangling += 1;
            }
        }

        // Per-lane decomposition (rank lanes only, already name-sorted).
        let mut flows_out: BTreeMap<u64, Vec<FlowEndpoint>> = BTreeMap::new();
        let mut flows_in: BTreeMap<u64, Vec<FlowEndpoint>> = BTreeMap::new();
        let mut analyses: Vec<LaneAnalysis> = Vec::new();
        for lane in &lanes {
            let d = lane.data.lock().unwrap();
            if !crate::collector::is_rank_root(&d.name) {
                continue;
            }
            let idx = analyses.len();
            analyses.push(analyze_lane(
                idx,
                &d.name,
                &d.events,
                mode,
                &mut flows_out,
                &mut flows_in,
            ));
        }

        let nsteps = analyses.iter().map(|a| a.steps.len()).max().unwrap_or(0);

        // Same-step flow edges, keyed by step: sender node → receiver
        // node. Only singly-bound flows become edges (a retransmitted
        // envelope still has one begin and one end; a torn one doesn't).
        // Nodes are `(lane index, segment index)` pairs.
        type Node = (usize, usize);
        let mut edges_by_step: BTreeMap<usize, BTreeMap<Node, Vec<Node>>> = BTreeMap::new();
        for (id, outs) in &flows_out {
            let Some(ins) = flows_in.get(id) else {
                continue;
            };
            if outs.len() != 1 || ins.len() != 1 {
                continue;
            }
            let (src, dst) = (&outs[0], &ins[0]);
            if src.step != dst.step || src.lane == dst.lane {
                continue;
            }
            edges_by_step
                .entry(src.step)
                .or_default()
                .entry((dst.lane, dst.seg))
                .or_default()
                .push((src.lane, src.seg));
        }

        // Per-step totals, buckets, and critical paths.
        let nlanes = analyses.len();
        let mut rank_buckets = vec![[0.0_f64; 6]; nlanes]; // c, p, w, u, r, slack
        let mut total_time = 0.0_f64;
        let mut critical_time = 0.0_f64;
        let mut step_summaries: Vec<StepSummary> = Vec::new();
        let empty_edges = BTreeMap::new();
        for k in 0..nsteps {
            let lane_steps: Vec<Option<&LaneStep>> =
                analyses.iter().map(|a| a.steps.get(k)).collect();
            let step_total = lane_steps
                .iter()
                .flatten()
                .map(|s| s.end - s.start)
                .fold(0.0_f64, f64::max);
            total_time += step_total;

            for (l, ls) in lane_steps.iter().enumerate() {
                let Some(ls) = ls else {
                    // A lane with no step k spends the whole step in
                    // slack (only malformed traces get here).
                    rank_buckets[l][5] += step_total;
                    continue;
                };
                let lane_total = ls.end - ls.start;
                let mut sums = [0.0_f64; 4]; // pack, wire, unpack, retry
                for seg in &ls.segs {
                    let d = seg.end - seg.start;
                    match seg.bucket {
                        Bucket::Pack => sums[0] += d,
                        Bucket::WireWait => sums[1] += d,
                        Bucket::Unpack => sums[2] += d,
                        Bucket::Retry => sums[3] += d,
                        Bucket::Compute => {}
                    }
                }
                // Compute and slack by subtraction: the six buckets sum
                // to step_total *exactly*, by construction.
                let comm: f64 = sums.iter().sum();
                rank_buckets[l][0] += lane_total - comm;
                rank_buckets[l][1] += sums[0];
                rank_buckets[l][2] += sums[1];
                rank_buckets[l][3] += sums[2];
                rank_buckets[l][4] += sums[3];
                rank_buckets[l][5] += step_total - lane_total;
            }

            let present: Vec<&LaneStep> = lane_steps.iter().flatten().copied().collect();
            if present.is_empty() {
                continue;
            }
            // lane_steps indices == analysis indices only when every
            // lane has step k; remap the edge endpoints accordingly.
            let remap: Vec<usize> = lane_steps
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(l, _)| l)
                .collect();
            let inv: BTreeMap<usize, usize> =
                remap.iter().enumerate().map(|(i, &l)| (l, i)).collect();
            let step_edges = edges_by_step.get(&k).unwrap_or(&empty_edges);
            let mut flow_preds: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
            for (&(dl, ds), srcs) in step_edges {
                let Some(&dl2) = inv.get(&dl) else { continue };
                for &(sl, ss) in srcs {
                    let Some(&sl2) = inv.get(&sl) else { continue };
                    flow_preds.entry((dl2, ds)).or_default().push((sl2, ss));
                }
            }
            let (critical, path_nodes) = longest_path(&present, &flow_preds);
            critical_time += critical;
            let path: Vec<PathSpan> = path_nodes
                .iter()
                .map(|&(l, s)| {
                    let seg = &present[l].segs[s];
                    PathSpan {
                        lane: analyses[remap[l]].name.clone(),
                        step: k,
                        name: seg.path.clone(),
                        bucket: seg.bucket,
                        duration: seg.end - seg.start,
                    }
                })
                .collect();
            step_summaries.push(StepSummary {
                index: k,
                total: step_total,
                critical,
                path,
            });
        }

        CriticalPathReport {
            clock: match mode {
                TraceMode::Deterministic => "ticks",
                TraceMode::Wall => "us",
            },
            lanes: analyses.iter().map(|a| a.name.clone()).collect(),
            nsteps,
            total_time,
            critical_time,
            flows_complete,
            flows_dangling,
            flows_by_tag,
            ranks: analyses
                .iter()
                .enumerate()
                .map(|(l, a)| RankAttribution {
                    lane: a.name.clone(),
                    compute: rank_buckets[l][0],
                    pack: rank_buckets[l][1],
                    wire_wait: rank_buckets[l][2],
                    unpack: rank_buckets[l][3],
                    retry: rank_buckets[l][4],
                    slack: rank_buckets[l][5],
                })
                .collect(),
            steps: step_summaries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkk_gpusim::{GpuArch, ProfileSubscriber};

    /// Drive a collector's subscriber hooks directly from two scoped
    /// threads so each gets its own rank lane (events land on the
    /// calling thread's lane).
    fn two_lane_fixture() -> TraceCollector {
        let c = TraceCollector::deterministic(GpuArch::h100());
        std::thread::scope(|s| {
            s.spawn(|| {
                c.region_begin("rank0", 1);
                c.region_begin("rank0/step", 2);
                c.region_begin("rank0/step/pair", 3);
                c.region_end("rank0/step/pair", 3, 0.0);
                c.region_begin("rank0/step/comm", 3);
                c.region_begin("rank0/step/comm/pack", 4);
                c.flow_begin("forward", "rank0/step/comm/pack", 101);
                c.region_end("rank0/step/comm/pack", 4, 0.0);
                c.region_begin("rank0/step/comm/recv", 4);
                c.flow_end("forward", "rank0/step/comm/recv", 102);
                // A long blocking receive: rank0 waits on rank1's send.
                for _ in 0..4 {
                    c.instant("halo_bytes", "rank0/step/comm/recv", 8.0);
                }
                c.region_end("rank0/step/comm/recv", 4, 0.0);
                c.region_end("rank0/step/comm", 3, 0.0);
                c.region_end("rank0/step", 2, 0.0);
                c.region_end("rank0", 1, 0.0);
            });
            s.spawn(|| {
                c.region_begin("rank1", 1);
                c.region_begin("rank1/step", 2);
                // Longer pair phase: rank1 is the step's slow lane.
                c.region_begin("rank1/step/pair", 3);
                c.instant("pair.items", "rank1/step/pair", 1.0);
                c.instant("pair.items", "rank1/step/pair", 1.0);
                c.instant("pair.items", "rank1/step/pair", 1.0);
                c.region_end("rank1/step/pair", 3, 0.0);
                c.region_begin("rank1/step/comm", 3);
                c.region_begin("rank1/step/comm/pack", 4);
                c.flow_begin("forward", "rank1/step/comm/pack", 102);
                c.region_end("rank1/step/comm/pack", 4, 0.0);
                c.region_begin("rank1/step/comm/recv", 4);
                c.flow_end("forward", "rank1/step/comm/recv", 101);
                c.region_end("rank1/step/comm/recv", 4, 0.0);
                c.region_end("rank1/step/comm", 3, 0.0);
                c.region_end("rank1/step", 2, 0.0);
                c.region_end("rank1", 1, 0.0);
            });
        });
        c
    }

    #[test]
    fn buckets_tile_the_step_exactly() {
        let c = two_lane_fixture();
        let report = c.critical_path();
        assert_eq!(report.lanes, vec!["rank0", "rank1"]);
        assert_eq!(report.nsteps, 1);
        assert!(report.total_time > 0.0);
        for r in &report.ranks {
            assert_eq!(
                r.total(),
                report.total_time,
                "bucket sums must equal total step time on {}",
                r.lane
            );
            assert!(r.pack > 0.0, "{}: pack phase missing", r.lane);
            assert!(r.wire_wait > 0.0, "{}: recv phase missing", r.lane);
            assert_eq!(r.retry, 0.0, "{}: fault-free run has no retry", r.lane);
        }
        // rank0's long recv makes it the slowest lane; rank1 idles.
        let r0 = &report.ranks[0];
        let r1 = &report.ranks[1];
        assert_eq!(r0.slack, 0.0, "slow lane has no slack");
        assert!(r1.slack > 0.0, "fast lane must show slack");
        assert!(r1.compute > r0.compute, "rank1's pair phase is longer");
        assert!(r0.wire_wait > r1.wire_wait, "rank0 blocks in recv");
    }

    #[test]
    fn flows_bind_and_critical_path_crosses_lanes() {
        let c = two_lane_fixture();
        let report = c.critical_path();
        assert_eq!(report.flows_complete, 2);
        assert_eq!(report.flows_dangling, 0);
        assert_eq!(report.flows_by_tag.get("forward"), Some(&2));
        assert_eq!(report.steps.len(), 1);
        let step = &report.steps[0];
        assert!(
            step.critical >= step.total - 1e-9,
            "critical path ({}) can never undershoot the slowest lane ({})",
            step.critical,
            step.total
        );
        assert!(!step.path.is_empty());
        // The critical path must traverse both lanes: rank1's long pair
        // phase feeds rank0's recv via the flow edge (or vice versa).
        let lanes_on_path: std::collections::BTreeSet<&str> =
            step.path.iter().map(|s| s.lane.as_str()).collect();
        assert_eq!(
            lanes_on_path.len(),
            2,
            "path stayed on one lane: {:?}",
            step.path
                .iter()
                .map(|s| (&s.lane, &s.name))
                .collect::<Vec<_>>()
        );
        // Path is connected and execution-ordered on each lane.
        assert!(report.critical_time >= report.steps[0].total - 1e-9);
        // top_spans is deterministic and bounded.
        assert!(report.top_spans(3).len() <= 3);
        assert!(report.top_spans(100).len() >= step.path.len());
    }

    #[test]
    fn canonical_json_is_stable_and_well_formed() {
        let a = two_lane_fixture().critical_path().to_canonical_json();
        let b = two_lane_fixture().critical_path().to_canonical_json();
        assert_eq!(a, b, "deterministic report is not byte-stable");
        for needle in [
            "\"schema\": 1",
            "\"clock\": \"ticks\"",
            "\"lanes\": 2",
            "\"flows\": {\"complete\": 2, \"dangling\": 0",
            "\"by_tag\": {\"forward\": 2}",
            "\"rank0\"",
            "\"compute\"",
            "\"wire_wait\"",
            "\"top_spans\"",
        ] {
            assert!(a.contains(needle), "missing {needle}:\n{a}");
        }
    }

    #[test]
    fn fault_instants_reclassify_wait_as_retry() {
        let c = TraceCollector::deterministic(GpuArch::h100());
        c.region_begin("rank0", 1);
        c.region_begin("rank0/step", 2);
        c.region_begin("rank0/step/recv", 3);
        c.instant("comm.fault.nack", "rank0/step/recv", 1.0);
        c.region_end("rank0/step/recv", 3, 0.0);
        c.region_begin("rank0/step/recv", 3);
        c.region_end("rank0/step/recv", 3, 0.0);
        c.region_end("rank0/step", 2, 0.0);
        c.region_end("rank0", 1, 0.0);
        let report = c.critical_path();
        let r = &report.ranks[0];
        assert!(r.retry > 0.0, "NACKed recv segment must count as retry");
        assert!(r.wire_wait > 0.0, "clean recv segment stays wire_wait");
        assert_eq!(r.total(), report.total_time);
    }

    #[test]
    fn unclosed_steps_are_repaired() {
        // A lane whose step never closes (abort mid-step) still
        // analyzes: the step is closed at last_ts + 1 like the Chrome
        // exporter does.
        let c = TraceCollector::deterministic(GpuArch::h100());
        c.region_begin("rank0", 1);
        c.region_begin("rank0/step", 2);
        c.region_begin("rank0/step/pair", 3);
        // nothing ever closes
        let report = c.critical_path();
        assert_eq!(report.nsteps, 1);
        assert_eq!(report.ranks[0].total(), report.total_time);
        assert!(report.total_time > 0.0);
    }
}
