//! The metrics registry: counters, gauges, and log₂-bucketed
//! histograms with a canonical JSON dump for CI diffing.
//!
//! This absorbs the stack's ad-hoc statistics (pool `grow_count`s,
//! exchange bytes, per-rank atom counts, neighbor occupancy) into one
//! place with one serialization. The dump is *canonical*: keys are
//! sorted (`BTreeMap` iteration), numbers render in shortest
//! round-trip form, and nothing wall-clock-derived is ever stored — so
//! a deterministic workload produces a byte-identical dump on every
//! run, and CI can compare it with `cmp`-strictness.
//!
//! Caveat for byte-stability under concurrency: counter increments from
//! different threads commute only when the values are exactly
//! representable (integral counts, bytes). Keep counter payloads
//! integral-valued; that is what every built-in instrumentation site
//! emits.

use crate::{push_json_num, push_json_string};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Clone, Default, PartialEq)]
struct Histogram {
    count: u64,
    sum: f64,
    /// Keyed by bucket exponent: value `v` lands in bucket
    /// `floor(log2(v))` for `v >= 1`, and in the sentinel bucket `-1`
    /// (lower bound 0) for `v < 1`.
    buckets: BTreeMap<i32, u64>,
}

/// Exponent of the log₂ bucket holding `v`, via the IEEE-754 exponent
/// field (exact for every finite positive double, unlike
/// `v.log2().floor()` at power-of-two boundaries).
fn bucket_exp(v: f64) -> i32 {
    if !v.is_finite() || v < 1.0 {
        return -1;
    }
    (((v.to_bits() >> 52) & 0x7ff) as i32) - 1023
}

fn bucket_lo(exp: i32) -> f64 {
    if exp < 0 {
        0.0
    } else {
        (2.0_f64).powi(exp)
    }
}

/// A read-only copy of one histogram, buckets as
/// `(lower_bound, count)` pairs in ascending order.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub buckets: Vec<(f64, u64)>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Counters (monotonic sums), gauges (last value), and log₂-bucketed
/// histograms behind one lock, dumped as canonical JSON.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at 0).
    pub fn add_counter(&self, name: &str, delta: f64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let h = inner.histograms.entry(name.to_string()).or_default();
        h.count += 1;
        h.sum += value;
        *h.buckets.entry(bucket_exp(value)).or_insert(0) += 1;
    }

    pub fn counter(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().counters.get(name).copied()
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let inner = self.inner.lock().unwrap();
        inner.histograms.get(name).map(|h| HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            buckets: h
                .buckets
                .iter()
                .map(|(&exp, &count)| (bucket_lo(exp), count))
                .collect(),
        })
    }

    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.histograms.is_empty()
    }

    /// The canonical dump: sorted keys, shortest-round-trip numbers,
    /// 2-space indent. Byte-identical across runs for deterministic
    /// workloads — CI compares it verbatim against a committed
    /// baseline.
    pub fn to_canonical_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": 1,\n  \"counters\": {");
        write_num_map(&mut out, &inner.counters);
        out.push_str("},\n  \"gauges\": {");
        write_num_map(&mut out, &inner.gauges);
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": {\"count\": ");
            push_json_num(&mut out, h.count as f64);
            out.push_str(", \"sum\": ");
            push_json_num(&mut out, h.sum);
            out.push_str(", \"buckets\": [");
            for (j, (&exp, &count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                push_json_num(&mut out, bucket_lo(exp));
                out.push_str(", ");
                push_json_num(&mut out, count as f64);
                out.push(']');
            }
            out.push_str("]}");
        }
        if !inner.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn write_num_map(out: &mut String, map: &BTreeMap<String, f64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(out, name);
        out.push_str(": ");
        push_json_num(out, *value);
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_exponents_are_exact_at_powers_of_two() {
        assert_eq!(bucket_exp(0.0), -1);
        assert_eq!(bucket_exp(0.5), -1);
        assert_eq!(bucket_exp(-3.0), -1);
        assert_eq!(bucket_exp(1.0), 0);
        assert_eq!(bucket_exp(1.9), 0);
        assert_eq!(bucket_exp(2.0), 1);
        assert_eq!(bucket_exp(1023.0), 9);
        assert_eq!(bucket_exp(1024.0), 10);
        assert_eq!(bucket_exp(1025.0), 10);
        assert_eq!(bucket_exp(2.0_f64.powi(52)), 52);
        assert_eq!(bucket_lo(10), 1024.0);
        assert_eq!(bucket_lo(-1), 0.0);
    }

    #[test]
    fn kinds_accumulate_correctly() {
        let m = MetricsRegistry::new();
        m.add_counter("bytes", 64.0);
        m.add_counter("bytes", 64.0);
        m.set_gauge("owned", 100.0);
        m.set_gauge("owned", 90.0);
        m.observe("msg", 3.0);
        m.observe("msg", 1000.0);
        assert_eq!(m.counter("bytes"), Some(128.0));
        assert_eq!(m.gauge("owned"), Some(90.0));
        let h = m.histogram("msg").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1003.0);
        assert_eq!(h.buckets, vec![(2.0, 1), (512.0, 1)]);
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn dump_is_canonical_and_stable() {
        let fill = || {
            let m = MetricsRegistry::new();
            // Insertion order scrambled on purpose: output must sort.
            m.set_gauge("z/gauge", 5.0);
            m.add_counter("b/bytes", 256.0);
            m.add_counter("a/bytes", 128.0);
            m.observe("hist", 7.0);
            m.observe("hist", 8.0);
            m.to_canonical_json()
        };
        let a = fill();
        assert_eq!(a, fill(), "dump not byte-stable");
        let a_pos = a.find("\"a/bytes\"").unwrap();
        let b_pos = a.find("\"b/bytes\"").unwrap();
        assert!(a_pos < b_pos, "keys not sorted:\n{a}");
        assert!(a.contains("\"buckets\": [[4, 1], [8, 1]]"), "{a}");
        assert!(a.contains("\"schema\": 1"), "{a}");

        let empty = MetricsRegistry::new().to_canonical_json();
        assert!(empty.contains("\"counters\": {}"), "{empty}");
    }
}
