//! The metrics registry: counters, gauges, and log₂-bucketed
//! histograms with a canonical JSON dump for CI diffing.
//!
//! This absorbs the stack's ad-hoc statistics (pool `grow_count`s,
//! exchange bytes, per-rank atom counts, neighbor occupancy) into one
//! place with one serialization. The dump is *canonical*: keys are
//! sorted (`BTreeMap` iteration), numbers render in shortest
//! round-trip form, and nothing wall-clock-derived is ever stored — so
//! a deterministic workload produces a byte-identical dump on every
//! run, and CI can compare it with `cmp`-strictness.
//!
//! Caveat for byte-stability under concurrency: counter increments from
//! different threads commute only when the values are exactly
//! representable (integral counts, bytes). Keep counter payloads
//! integral-valued; that is what every built-in instrumentation site
//! emits.

use crate::{push_json_num, push_json_string};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Clone, Default, PartialEq)]
struct Histogram {
    count: u64,
    sum: f64,
    /// Keyed by bucket exponent: value `v` lands in bucket
    /// `floor(log2(v))` for `v >= 1`, and in the sentinel bucket `-1`
    /// (lower bound 0) for `v < 1`.
    buckets: BTreeMap<i32, u64>,
}

/// Exponent of the log₂ bucket holding `v`, via the IEEE-754 exponent
/// field (exact for every finite positive double, unlike
/// `v.log2().floor()` at power-of-two boundaries).
fn bucket_exp(v: f64) -> i32 {
    if !v.is_finite() || v < 1.0 {
        return -1;
    }
    (((v.to_bits() >> 52) & 0x7ff) as i32) - 1023
}

fn bucket_lo(exp: i32) -> f64 {
    if exp < 0 {
        0.0
    } else {
        (2.0_f64).powi(exp)
    }
}

/// Estimate the `q`-quantile of a log₂-bucketed distribution by linear
/// interpolation inside the bucket holding the rank-`⌈q·count⌉`
/// observation (bucket `exp` spans `[2^exp, 2^(exp+1))`; the sentinel
/// spans `[0, 1)`). Pure integer-and-dyadic arithmetic on the bucket
/// table, so the estimate is bit-identical across runs and platforms.
/// Returns 0.0 for an empty histogram.
fn quantile_est(count: u64, buckets: &BTreeMap<i32, u64>, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (&exp, &n) in buckets {
        if n == 0 {
            continue;
        }
        if seen + n >= rank {
            let lo = bucket_lo(exp);
            let hi = if exp < 0 { 1.0 } else { 2.0 * lo };
            let frac = (rank - seen) as f64 / n as f64;
            return lo + (hi - lo) * frac;
        }
        seen += n;
    }
    // Unreachable when bucket counts sum to `count`; fall back to the
    // top edge of the last occupied bucket.
    buckets
        .iter()
        .rev()
        .find(|(_, &n)| n > 0)
        .map_or(
            0.0,
            |(&exp, _)| if exp < 0 { 1.0 } else { bucket_lo(exp + 1) },
        )
}

/// A read-only copy of one histogram, buckets as
/// `(lower_bound, count)` pairs in ascending order.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// The same log₂-interpolated quantile estimate the canonical dump
    /// renders as `p50`/`p95`/`p99`.
    pub fn quantile(&self, q: f64) -> f64 {
        let rebuilt: BTreeMap<i32, u64> = self
            .buckets
            .iter()
            .map(|&(lo, n)| (bucket_exp(lo), n))
            .collect();
        quantile_est(self.count, &rebuilt, q)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Counters (monotonic sums), gauges (last value), and log₂-bucketed
/// histograms behind one lock, dumped as canonical JSON.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at 0).
    pub fn add_counter(&self, name: &str, delta: f64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let h = inner.histograms.entry(name.to_string()).or_default();
        h.count += 1;
        h.sum += value;
        *h.buckets.entry(bucket_exp(value)).or_insert(0) += 1;
    }

    pub fn counter(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().counters.get(name).copied()
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let inner = self.inner.lock().unwrap();
        inner.histograms.get(name).map(|h| HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            buckets: h
                .buckets
                .iter()
                .map(|(&exp, &count)| (bucket_lo(exp), count))
                .collect(),
        })
    }

    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.counters.is_empty() && inner.gauges.is_empty() && inner.histograms.is_empty()
    }

    /// The canonical dump: sorted keys, shortest-round-trip numbers,
    /// 2-space indent. Byte-identical across runs for deterministic
    /// workloads — CI compares it verbatim against a committed
    /// baseline.
    pub fn to_canonical_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": 1,\n  \"counters\": {");
        write_num_map(&mut out, &inner.counters);
        out.push_str("},\n  \"gauges\": {");
        write_num_map(&mut out, &inner.gauges);
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, name);
            out.push_str(": {\"count\": ");
            push_json_num(&mut out, h.count as f64);
            out.push_str(", \"sum\": ");
            push_json_num(&mut out, h.sum);
            for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                out.push_str(", \"");
                out.push_str(label);
                out.push_str("\": ");
                push_json_num(&mut out, quantile_est(h.count, &h.buckets, q));
            }
            out.push_str(", \"buckets\": [");
            for (j, (&exp, &count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                push_json_num(&mut out, bucket_lo(exp));
                out.push_str(", ");
                push_json_num(&mut out, count as f64);
                out.push(']');
            }
            out.push_str("]}");
        }
        if !inner.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn write_num_map(out: &mut String, map: &BTreeMap<String, f64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(out, name);
        out.push_str(": ");
        push_json_num(out, *value);
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_exponents_are_exact_at_powers_of_two() {
        assert_eq!(bucket_exp(0.0), -1);
        assert_eq!(bucket_exp(0.5), -1);
        assert_eq!(bucket_exp(-3.0), -1);
        assert_eq!(bucket_exp(1.0), 0);
        assert_eq!(bucket_exp(1.9), 0);
        assert_eq!(bucket_exp(2.0), 1);
        assert_eq!(bucket_exp(1023.0), 9);
        assert_eq!(bucket_exp(1024.0), 10);
        assert_eq!(bucket_exp(1025.0), 10);
        assert_eq!(bucket_exp(2.0_f64.powi(52)), 52);
        assert_eq!(bucket_lo(10), 1024.0);
        assert_eq!(bucket_lo(-1), 0.0);
    }

    #[test]
    fn kinds_accumulate_correctly() {
        let m = MetricsRegistry::new();
        m.add_counter("bytes", 64.0);
        m.add_counter("bytes", 64.0);
        m.set_gauge("owned", 100.0);
        m.set_gauge("owned", 90.0);
        m.observe("msg", 3.0);
        m.observe("msg", 1000.0);
        assert_eq!(m.counter("bytes"), Some(128.0));
        assert_eq!(m.gauge("owned"), Some(90.0));
        let h = m.histogram("msg").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1003.0);
        assert_eq!(h.buckets, vec![(2.0, 1), (512.0, 1)]);
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn dump_is_canonical_and_stable() {
        let fill = || {
            let m = MetricsRegistry::new();
            // Insertion order scrambled on purpose: output must sort.
            m.set_gauge("z/gauge", 5.0);
            m.add_counter("b/bytes", 256.0);
            m.add_counter("a/bytes", 128.0);
            m.observe("hist", 7.0);
            m.observe("hist", 8.0);
            m.to_canonical_json()
        };
        let a = fill();
        assert_eq!(a, fill(), "dump not byte-stable");
        let a_pos = a.find("\"a/bytes\"").unwrap();
        let b_pos = a.find("\"b/bytes\"").unwrap();
        assert!(a_pos < b_pos, "keys not sorted:\n{a}");
        assert!(a.contains("\"buckets\": [[4, 1], [8, 1]]"), "{a}");
        assert!(a.contains("\"schema\": 1"), "{a}");
        // Quantile keys render between sum and buckets, in fixed order.
        let h_start = a.find("\"hist\"").unwrap();
        let tail = &a[h_start..];
        let order: Vec<usize> = ["\"sum\"", "\"p50\"", "\"p95\"", "\"p99\"", "\"buckets\""]
            .iter()
            .map(|k| tail.find(k).unwrap_or_else(|| panic!("{k} missing:\n{a}")))
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "key order:\n{a}");

        let empty = MetricsRegistry::new().to_canonical_json();
        assert!(empty.contains("\"counters\": {}"), "{empty}");
    }

    #[test]
    fn quantile_estimates_interpolate_within_buckets() {
        // Empty histogram: all quantiles 0.
        assert_eq!(quantile_est(0, &BTreeMap::new(), 0.5), 0.0);

        // Single observation in [4, 8): every quantile lands inside
        // that bucket, at lo + (hi-lo)·1/1 = 8 (rank 1 of 1).
        let one = BTreeMap::from([(2, 1u64)]);
        assert_eq!(quantile_est(1, &one, 0.5), 8.0);
        assert_eq!(quantile_est(1, &one, 0.99), 8.0);

        // 100 observations: 50 in [1,2), 50 in [2,4). p50 is the top of
        // the first bucket; p95 and p99 interpolate inside the second.
        let two = BTreeMap::from([(0, 50u64), (1, 50u64)]);
        assert_eq!(quantile_est(100, &two, 0.50), 2.0);
        assert_eq!(quantile_est(100, &two, 0.95), 2.0 + 2.0 * (45.0 / 50.0));
        assert_eq!(quantile_est(100, &two, 0.99), 2.0 + 2.0 * (49.0 / 50.0));

        // Sentinel bucket [0, 1) interpolates toward 1.
        let sub = BTreeMap::from([(-1, 4u64)]);
        assert_eq!(quantile_est(4, &sub, 0.5), 0.5);

        // Snapshot method agrees with the dump's estimator.
        let m = MetricsRegistry::new();
        for v in [1.0, 1.5, 2.0, 3.0] {
            m.observe("q", v);
        }
        let snap = m.histogram("q").unwrap();
        let rebuilt = BTreeMap::from([(0, 2u64), (1, 2u64)]);
        assert_eq!(snap.quantile(0.5), quantile_est(4, &rebuilt, 0.5));
        let dump = m.to_canonical_json();
        assert!(dump.contains("\"p50\": 2"), "{dump}");
    }
}
