//! Chrome `trace_event` JSON export.
//!
//! The output is the "JSON Object Format" of the trace_event spec: a
//! top-level object with a `traceEvents` array, loadable in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`. Layout:
//!
//! * `pid 0` — the **host** process: one `tid` per lane (rank threads
//!   `rank0`, `rank1`, ... and `host` for everything else), carrying
//!   region spans (`B`/`E`), kernel-launch instants, point events, and
//!   cumulative counter tracks.
//! * `pid 1` — the **simulated device**: one `tid` per host lane that
//!   recorded kernel stats, carrying complete (`X`) events whose
//!   durations are the `lkk-gpusim` cost-model predictions.
//!
//! Lanes are emitted sorted by name, and every span stream is repaired
//! to be balanced (unmatched `E` events are dropped, still-open spans
//! get synthetic `E`s at the lane's final timestamp), so the schema
//! check in `tests/trace_schema.rs` can require balance uncondition-
//! ally.
//!
//! Cross-lane message flows are rendered as Perfetto flow events: a
//! `ph: "s"` on the sender lane bound to the enclosing span and the
//! matching `ph: "f"` (with `bp: "e"`) on the receiver lane, sharing a
//! `cat`/`id` pair. A pre-pass scans every lane and only ids with
//! exactly one recorded begin *and* one recorded end are emitted — an
//! envelope lost to a dead edge leaves a dangling begin, which is
//! dropped so the exported `s`/`f` pairs stay balanced unconditionally
//! too.

use crate::collector::{DeviceEvent, Event, EventKind, TraceCollector, TraceMode};
use crate::{push_json_num, push_json_string};
use std::collections::{BTreeMap, BTreeSet};

impl TraceCollector {
    /// Render the collected timeline as Chrome `trace_event` JSON.
    pub fn export_chrome(&self) -> String {
        let mode = self.mode();
        let lanes = self.sorted_lanes();

        // Flow pre-pass: an id is renderable only when the collector saw
        // exactly one begin and one end for it (anything else is a
        // truncated or torn flow; emitting it would unbalance the pairs).
        let mut flow_counts: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for lane in &lanes {
            let d = lane.data.lock().unwrap();
            for ev in &d.events {
                match &ev.kind {
                    EventKind::FlowBegin { id, .. } => flow_counts.entry(*id).or_default().0 += 1,
                    EventKind::FlowEnd { id, .. } => flow_counts.entry(*id).or_default().1 += 1,
                    _ => {}
                }
            }
        }
        let complete_flows: BTreeSet<u64> = flow_counts
            .iter()
            .filter(|(_, counts)| **counts == (1, 1))
            .map(|(id, _)| *id)
            .collect();

        let mut out = String::with_capacity(1 << 16);
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {");
        out.push_str("\"generator\": \"lkk-trace\", \"arch\": ");
        push_json_string(&mut out, self.arch_name());
        out.push_str(", \"clock\": ");
        push_json_string(
            &mut out,
            match mode {
                TraceMode::Deterministic => "ticks",
                TraceMode::Wall => "us",
            },
        );
        out.push_str("},\n  \"traceEvents\": [\n");

        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    ");
            out.push_str(&line);
        };

        emit(process_meta(0, "host"), &mut out);
        if lanes
            .iter()
            .any(|l| !l.data.lock().unwrap().device.is_empty())
        {
            emit(
                process_meta(1, &format!("gpusim {} (predicted)", self.arch_name())),
                &mut out,
            );
        }

        for (tid, lane) in lanes.iter().enumerate() {
            let d = lane.data.lock().unwrap();
            emit(thread_meta(0, tid, &d.name), &mut out);
            for line in host_events(&d.events, mode, tid, &complete_flows) {
                emit(line, &mut out);
            }
            if !d.device.is_empty() {
                emit(thread_meta(1, tid, &format!("{} device", d.name)), &mut out);
                for ev in &d.device {
                    emit(device_event(ev, mode, tid), &mut out);
                }
            }
        }

        out.push_str("\n  ]\n}\n");
        out
    }
}

fn ts_of(ev: &Event, mode: TraceMode) -> f64 {
    match mode {
        TraceMode::Deterministic => ev.ts_det,
        TraceMode::Wall => ev.ts_wall,
    }
}

/// Render one lane's host events, repairing span balance: an `E` with
/// no open span is dropped; spans still open at the end are closed at
/// one past the lane's final timestamp. Flow events are emitted only
/// for ids in `complete_flows` (exactly one begin + one end recorded).
fn host_events(
    events: &[Event],
    mode: TraceMode,
    tid: usize,
    complete_flows: &BTreeSet<u64>,
) -> Vec<String> {
    let mut lines = Vec::with_capacity(events.len());
    let mut open: Vec<&str> = Vec::new();
    let mut last_ts = 0.0_f64;
    for ev in events {
        let ts = ts_of(ev, mode);
        last_ts = last_ts.max(ts);
        match &ev.kind {
            EventKind::Begin(name) => {
                open.push(name);
                lines.push(span_event("B", name, ts, tid));
            }
            EventKind::End(name) => {
                if open.pop().is_some() {
                    lines.push(span_event("E", name, ts, tid));
                }
            }
            EventKind::Instant { name, value } => {
                lines.push(arg_event("i", name, "value", *value, ts, tid, true));
            }
            EventKind::Counter { name, value } => {
                lines.push(arg_event("C", name, "value", *value, ts, tid, false));
            }
            EventKind::Launch { name, work_items } => {
                lines.push(arg_event(
                    "i",
                    name,
                    "work_items",
                    *work_items,
                    ts,
                    tid,
                    true,
                ));
            }
            EventKind::FlowBegin { name, id } => {
                if complete_flows.contains(id) {
                    lines.push(flow_event("s", name, *id, ts, tid));
                }
            }
            EventKind::FlowEnd { name, id } => {
                if complete_flows.contains(id) {
                    lines.push(flow_event("f", name, *id, ts, tid));
                }
            }
        }
    }
    // Synthetic closes, innermost first, all at the lane's end.
    while let Some(name) = open.pop() {
        lines.push(span_event("E", name, last_ts + 1.0, tid));
    }
    lines
}

fn event_head(out: &mut String, ph: &str, name: &str, pid: usize, tid: usize, ts: f64) {
    out.push_str("{\"name\": ");
    push_json_string(out, name);
    out.push_str(&format!(
        ", \"ph\": \"{ph}\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": "
    ));
    push_json_num(out, ts);
}

fn span_event(ph: &str, name: &str, ts: f64, tid: usize) -> String {
    let mut s = String::new();
    event_head(&mut s, ph, name, 0, tid, ts);
    s.push('}');
    s
}

fn arg_event(
    ph: &str,
    name: &str,
    arg: &str,
    value: f64,
    ts: f64,
    tid: usize,
    thread_scope: bool,
) -> String {
    let mut s = String::new();
    event_head(&mut s, ph, name, 0, tid, ts);
    if thread_scope {
        // Instant scope: "t" = thread-width tick mark.
        s.push_str(", \"s\": \"t\"");
    }
    s.push_str(", \"args\": {");
    push_json_string(&mut s, arg);
    s.push_str(": ");
    push_json_num(&mut s, value);
    s.push_str("}}");
    s
}

/// One Perfetto flow endpoint. The `f` side carries `"bp": "e"` so the
/// arrow terminates at the *enclosing slice* end rather than the next
/// slice (the trace_event "binding point" rule).
fn flow_event(ph: &str, name: &str, id: u64, ts: f64, tid: usize) -> String {
    let mut s = String::new();
    event_head(&mut s, ph, name, 0, tid, ts);
    s.push_str(", \"cat\": \"comm\", \"id\": ");
    s.push_str(&id.to_string());
    if ph == "f" {
        s.push_str(", \"bp\": \"e\"");
    }
    s.push('}');
    s
}

fn device_event(ev: &DeviceEvent, mode: TraceMode, tid: usize) -> String {
    let ts = match mode {
        TraceMode::Deterministic => ev.ts_det,
        TraceMode::Wall => ev.ts_wall,
    };
    let mut s = String::new();
    event_head(&mut s, "X", &ev.name, 1, tid, ts);
    s.push_str(", \"dur\": ");
    push_json_num(&mut s, ev.dur_us);
    s.push('}');
    s
}

fn process_meta(pid: usize, name: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"args\": {{\"name\": "
    ));
    push_json_string(&mut s, name);
    s.push_str("}}");
    s
}

fn thread_meta(pid: usize, tid: usize, name: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": "
    ));
    push_json_string(&mut s, name);
    s.push_str("}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkk_gpusim::GpuArch;

    #[test]
    fn export_is_deterministic_and_balanced() {
        // Drive two identical collectors directly (no global registry,
        // so no interference from concurrent tests) and require
        // byte-identical exports.
        use lkk_gpusim::{KernelStats, ProfileSubscriber};
        let render = || {
            let c = TraceCollector::deterministic(GpuArch::h100());
            c.region_begin("step", 1);
            c.region_begin("step/pair", 2);
            c.kernel_launch("PairCompute", "step/pair", 256);
            let mut stats = KernelStats::new("PairCompute");
            stats.region = "step/pair".into();
            stats.work_items = 256.0;
            stats.flops = 1e6;
            stats.dram_bytes = 1e5;
            c.kernel_stats(&stats);
            c.instant("fwd_bytes", "step/pair", 96.0);
            c.counter("owned_atoms", "step", 64.0);
            c.region_end("step/pair", 2, 0.0);
            // "step" deliberately left open: exporter must synthesize
            // its E.
            c.export_chrome()
        };
        let a = render();
        let b = render();
        assert_eq!(a, b, "deterministic export is not byte-stable");

        // Balanced spans on the host lane.
        let begins = a.matches("\"ph\": \"B\"").count();
        let ends = a.matches("\"ph\": \"E\"").count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2, "synthetic close missing:\n{a}");
        // Device lane rendered with a predicted duration.
        assert!(a.contains("\"ph\": \"X\""), "{a}");
        assert!(a.contains("\"dur\": "), "{a}");
        assert!(a.contains("gpusim NVIDIA H100 (predicted)"), "{a}");
        // Counter and instant payloads present.
        assert!(a.contains("\"ph\": \"C\""), "{a}");
        assert!(a.contains("\"work_items\": 256"), "{a}");
    }

    #[test]
    fn unmatched_end_is_dropped() {
        use lkk_gpusim::ProfileSubscriber;
        let c = TraceCollector::deterministic(GpuArch::h100());
        c.region_end("phantom", 1, 0.0);
        c.region_begin("real", 1);
        c.region_end("real", 1, 0.0);
        let json = c.export_chrome();
        assert!(!json.contains("phantom"), "{json}");
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 1);
    }

    #[test]
    fn complete_flows_export_and_dangling_flows_are_dropped() {
        use lkk_gpusim::ProfileSubscriber;
        let c = TraceCollector::deterministic(GpuArch::h100());
        // Complete flow 7: begin inside a send span, end on the same
        // (single-threaded test) lane inside a recv span.
        c.region_begin("send", 1);
        c.flow_begin("forward", "send", 7);
        c.region_end("send", 1, 0.0);
        c.region_begin("recv", 1);
        c.flow_end("forward", "recv", 7);
        c.region_end("recv", 1, 0.0);
        // Dangling flow 9: begin with no end (dead-edge drop).
        c.flow_begin("border", "send", 9);
        let json = c.export_chrome();
        assert_eq!(json.matches("\"ph\": \"s\"").count(), 1, "{json}");
        assert_eq!(json.matches("\"ph\": \"f\"").count(), 1, "{json}");
        assert!(json.contains("\"cat\": \"comm\", \"id\": 7"), "{json}");
        assert!(json.contains("\"bp\": \"e\""), "{json}");
        assert!(!json.contains("\"id\": 9"), "dangling flow leaked:\n{json}");
    }
}
