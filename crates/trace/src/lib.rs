//! `lkk-trace`: the trace timeline + metrics layer of the stack.
//!
//! The profiling layer in `lkk-kokkos` emits a flat event stream
//! (regions, kernel launches, kernel stats, transfers, instants,
//! counter samples) to any registered
//! [`lkk_gpusim::ProfileSubscriber`]. The `perf-smoke` harness consumes
//! that stream as *aggregates*; this crate consumes it as a
//! *timeline* — the analogue of attaching a Kokkos Tools tracing
//! library (space-time-stack, the Perfetto connector) to a LAMMPS-KOKKOS
//! run.
//!
//! Three pieces:
//!
//! * [`TraceCollector`] — a subscriber that appends every event to a
//!   per-thread lane buffer. Each event carries **two** timestamps: a
//!   wall-clock microsecond offset (for humans) and a deterministic
//!   per-lane logical tick (for CI). Rank worker threads (outermost
//!   region `rank<N>`) get their own named lanes; everything else lands
//!   on the `host` lane of its thread.
//! * [`MetricsRegistry`] — counters, gauges, and log₂-bucketed
//!   histograms with a canonical sorted-key JSON dump, byte-stable in
//!   deterministic runs. The collector feeds it automatically: instant
//!   events sum into counters, counter samples set gauges and feed
//!   histograms.
//! * [`chrome`] — a Chrome `trace_event` JSON exporter
//!   ([`TraceCollector::export_chrome`]). The file loads directly in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: one
//!   lane per rank thread under the `host` process, plus synthetic
//!   *simulated device* lanes whose kernel durations come from the
//!   `lkk-gpusim` cost model, so predicted device time renders next to
//!   the host phases that launched it.
//!
//! Determinism contract: in [`TraceMode::Deterministic`], with
//! `lkk_kokkos::exec::set_force_sequential(true)` and the same
//! workload, the exported trace and metrics dump are byte-identical
//! across runs — each lane's tick clock counts only that lane's own
//! events, so concurrent rank threads cannot perturb each other's
//! timestamps, and lanes are sorted by name at export. Cross-lane
//! interleaving is deliberately *not* represented in that mode; use
//! [`TraceMode::Wall`] when you want a human-readable timeline.

mod chrome;
mod collector;
mod critical_path;
mod metrics;

pub use collector::{TraceCollector, TraceMode};
pub use critical_path::{Bucket, CriticalPathReport, PathSpan, RankAttribution, StepSummary};
pub use metrics::{HistogramSnapshot, MetricsRegistry};

/// Append `s` to `out` as a JSON string literal (quotes + escapes).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Canonical JSON number rendering: shortest round-trip form, the same
/// convention as `lkk-perf`'s writer, so dumps diff cleanly.
pub(crate) fn push_json_num(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // trace_event has no NaN/Inf literals; clamp loudly.
        out.push_str("null");
    }
}
