//! The event collector: per-thread append-only lane buffers fed by the
//! global `lkk_kokkos::profile` subscriber stream.
//!
//! Every profiling event is recorded on the *lane* of the thread that
//! emitted it. A lane is named after the thread's outermost region when
//! that region is a rank marker (`rank0`, `rank1`, ... — what
//! the `RunSpec` brick driver opens first thing on each worker), and
//! `host`
//! otherwise. Each lane keeps its own logical-tick clock (one tick per
//! event on that lane), which is what makes the deterministic mode
//! byte-stable under concurrency: a lane's timestamps are a pure
//! function of that thread's own event sequence.
//!
//! Kernel-stats records additionally produce a *device* event on the
//! lane's synthetic device track, with a duration predicted by the
//! `lkk-gpusim` cost model for the collector's architecture. Device
//! events are serialized per lane with a cursor (`start = max(host
//! timestamp, cursor)`, `cursor = start + duration`) so the predicted
//! timeline never self-overlaps.

use crate::metrics::MetricsRegistry;
use lkk_gpusim::{GpuArch, KernelStats, ProfileSubscriber, TransferDir};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which timestamp the exporters render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Per-lane logical ticks: byte-stable across runs (with
    /// `force_sequential` counters), the CI mode. Cross-lane ordering
    /// is not meaningful.
    Deterministic,
    /// Microseconds of wall clock since collection started: the
    /// human-readable mode for Perfetto timelines.
    Wall,
}

/// One recorded host-lane event.
pub(crate) struct Event {
    /// Lane-local logical tick (0, 1, 2, ... per lane).
    pub(crate) ts_det: f64,
    /// Microseconds since the collector's epoch.
    pub(crate) ts_wall: f64,
    pub(crate) kind: EventKind,
}

pub(crate) enum EventKind {
    /// Region push; the payload is the leaf name (nesting carries the
    /// rest of the path).
    Begin(String),
    /// Region pop.
    End(String),
    /// Point event with a value payload (`ph: "i"` in trace_event).
    Instant { name: String, value: f64 },
    /// Counter-track sample; `value` is the cumulative per-lane total
    /// at sample time (`ph: "C"`).
    Counter { name: String, value: f64 },
    /// Kernel dispatch marker on the host lane.
    Launch { name: String, work_items: f64 },
    /// Cross-lane flow origin (`ph: "s"`): this lane emitted the
    /// message `id` (see `lkk_core::comm::fault::flow_id`); `name` is
    /// the phase tag.
    FlowBegin { name: String, id: u64 },
    /// Cross-lane flow terminus (`ph: "f"`): this lane accepted the
    /// message `id`.
    FlowEnd { name: String, id: u64 },
}

/// One predicted kernel execution on a synthetic device lane.
pub(crate) struct DeviceEvent {
    pub(crate) ts_det: f64,
    pub(crate) ts_wall: f64,
    pub(crate) dur_us: f64,
    pub(crate) name: String,
}

pub(crate) struct LaneData {
    pub(crate) name: String,
    tick: u64,
    pub(crate) events: Vec<Event>,
    pub(crate) device: Vec<DeviceEvent>,
    dev_cursor_det: f64,
    dev_cursor_wall: f64,
    /// Running totals behind the cumulative counter tracks.
    counter_totals: BTreeMap<String, f64>,
}

pub(crate) struct Lane {
    pub(crate) data: Mutex<LaneData>,
}

/// Collector instance ids, so the thread-local lane cache can tell
/// collectors apart (tests may have several alive at once).
static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (collector id, this thread's lane in that collector). Stale
    /// entries for dropped collectors are harmless; the list stays tiny
    /// because a process rarely has more than a couple of collectors.
    static LANE_CACHE: RefCell<Vec<(u64, Arc<Lane>)>> = const { RefCell::new(Vec::new()) };
}

/// A [`ProfileSubscriber`] that records the full event stream as
/// per-lane timelines and feeds a [`MetricsRegistry`].
///
/// Register with `lkk_kokkos::profile::register_subscriber`, run the
/// workload, unregister, then export with
/// [`TraceCollector::export_chrome`] /
/// [`TraceCollector::metrics`]`.to_canonical_json()`.
pub struct TraceCollector {
    id: u64,
    mode: TraceMode,
    arch: GpuArch,
    epoch: Instant,
    lanes: Mutex<Vec<Arc<Lane>>>,
    metrics: Arc<MetricsRegistry>,
}

impl TraceCollector {
    // Audited wall-clock site: lint_allow.toml LKK001 (Wall mode only).
    #[allow(clippy::disallowed_methods)]
    pub fn new(mode: TraceMode, arch: GpuArch) -> Self {
        Self {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            mode,
            arch,
            epoch: Instant::now(),
            lanes: Mutex::new(Vec::new()),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Deterministic-tick collector (the CI configuration).
    pub fn deterministic(arch: GpuArch) -> Self {
        Self::new(TraceMode::Deterministic, arch)
    }

    /// Wall-clock collector for human-readable timelines.
    pub fn wall(arch: GpuArch) -> Self {
        Self::new(TraceMode::Wall, arch)
    }

    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    pub(crate) fn arch_name(&self) -> &'static str {
        self.arch.name
    }

    /// The metrics registry this collector feeds (shared; harvest code
    /// may add its own gauges/histograms to the same dump).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Number of lanes with at least one event.
    pub fn lane_count(&self) -> usize {
        self.lanes.lock().unwrap().len()
    }

    /// Snapshot the lanes sorted by name (stable: creation order breaks
    /// ties, which only concurrent unnamed host threads can produce).
    pub(crate) fn sorted_lanes(&self) -> Vec<Arc<Lane>> {
        let mut lanes = self.lanes.lock().unwrap().clone();
        lanes.sort_by_key(|l| l.data.lock().unwrap().name.clone());
        lanes
    }

    /// This thread's lane in this collector, creating it on first use.
    fn lane(&self) -> Arc<Lane> {
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, lane)) = cache.iter().find(|(cid, _)| *cid == self.id) {
                return Arc::clone(lane);
            }
            let lane = Arc::new(Lane {
                data: Mutex::new(LaneData {
                    name: "host".to_string(),
                    tick: 0,
                    events: Vec::new(),
                    device: Vec::new(),
                    dev_cursor_det: 0.0,
                    dev_cursor_wall: 0.0,
                    counter_totals: BTreeMap::new(),
                }),
            });
            self.lanes.lock().unwrap().push(Arc::clone(&lane));
            // Bound the cache: drop the oldest stale entries first.
            if cache.len() >= 8 {
                cache.remove(0);
            }
            cache.push((self.id, Arc::clone(&lane)));
            lane
        })
    }

    fn wall_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Record one host-lane event, renaming the lane if `root` is a
    /// rank marker and the lane still carries the default name.
    fn record(&self, root: &str, kind: EventKind) {
        let lane = self.lane();
        let wall = self.wall_us();
        let mut d = lane.data.lock().unwrap();
        if d.name == "host" && is_rank_root(root) {
            d.name = root.to_string();
        }
        let tick = d.tick;
        d.tick += 1;
        d.events.push(Event {
            ts_det: tick as f64,
            ts_wall: wall,
            kind,
        });
    }

    /// Bump the cumulative per-lane total behind counter track `name`
    /// and record a counter sample with the new total.
    fn record_cumulative(&self, root: &str, name: &str, delta: f64) {
        let lane = self.lane();
        let wall = self.wall_us();
        let mut d = lane.data.lock().unwrap();
        if d.name == "host" && is_rank_root(root) {
            d.name = root.to_string();
        }
        let total = d.counter_totals.entry(name.to_string()).or_insert(0.0);
        *total += delta;
        let value = *total;
        let tick = d.tick;
        d.tick += 1;
        d.events.push(Event {
            ts_det: tick as f64,
            ts_wall: wall,
            kind: EventKind::Counter {
                name: name.to_string(),
                value,
            },
        });
    }
}

/// Is `root` a rank-thread marker region (`rank` + digits)?
pub(crate) fn is_rank_root(root: &str) -> bool {
    root.strip_prefix("rank")
        .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
}

/// First segment of a region path (`""` stays `""`).
fn root_of(path: &str) -> &str {
    path.split('/').next().unwrap_or("")
}

/// Last segment of a region path.
fn leaf_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

/// Metrics key prefix for events from `region`: the first path segment,
/// or `host` outside any region.
fn metrics_root(region: &str) -> &str {
    let r = root_of(region);
    if r.is_empty() {
        "host"
    } else {
        r
    }
}

impl ProfileSubscriber for TraceCollector {
    fn region_begin(&self, path: &str, _depth: usize) {
        self.record(root_of(path), EventKind::Begin(leaf_of(path).to_string()));
    }

    fn region_end(&self, path: &str, _depth: usize, _seconds: f64) {
        self.record(root_of(path), EventKind::End(leaf_of(path).to_string()));
    }

    fn kernel_launch(&self, name: &str, region: &str, work_items: usize) {
        self.record(
            root_of(region),
            EventKind::Launch {
                name: name.to_string(),
                work_items: work_items as f64,
            },
        );
    }

    fn kernel_stats(&self, stats: &KernelStats) {
        // A predicted execution on the synthetic device lane. Duration
        // is a pure function of the deterministic counters, so device
        // lanes stay byte-stable too.
        let dur_us = stats.time_on_default(&self.arch).seconds * 1e6;
        let lane = self.lane();
        let wall = self.wall_us();
        let mut d = lane.data.lock().unwrap();
        let root = root_of(&stats.region);
        if d.name == "host" && is_rank_root(root) {
            d.name = root.to_string();
        }
        let host_det = d.tick as f64;
        let ts_det = host_det.max(d.dev_cursor_det);
        d.dev_cursor_det = ts_det + dur_us;
        let ts_wall = wall.max(d.dev_cursor_wall);
        d.dev_cursor_wall = ts_wall + dur_us;
        d.device.push(DeviceEvent {
            ts_det,
            ts_wall,
            dur_us,
            name: stats.name.clone(),
        });
    }

    fn transfer(&self, dir: TransferDir, _label: &str, bytes: u64) {
        let track = match dir {
            TransferDir::HostToDevice => "h2d_bytes",
            TransferDir::DeviceToHost => "d2h_bytes",
        };
        let region = lkk_kokkos::profile::current_region();
        self.record_cumulative(root_of(&region), track, bytes as f64);
        self.metrics
            .add_counter(&format!("{}/{track}", metrics_root(&region)), bytes as f64);
    }

    fn instant(&self, name: &str, region: &str, value: f64) {
        self.record(
            root_of(region),
            EventKind::Instant {
                name: name.to_string(),
                value,
            },
        );
        // Instants carry per-event increments (bytes sent, items
        // dropped); the registry sums them.
        self.metrics
            .add_counter(&format!("{}/{name}", metrics_root(region)), value);
    }

    fn counter(&self, name: &str, region: &str, value: f64) {
        self.record(
            root_of(region),
            EventKind::Counter {
                name: name.to_string(),
                value,
            },
        );
        // Counter samples are absolute values: the gauge keeps the last
        // sample, the histogram the distribution over the run.
        let key = format!("{}/{name}", metrics_root(region));
        self.metrics.set_gauge(&key, value);
        self.metrics.observe(&key, value);
    }

    fn flow_begin(&self, name: &str, region: &str, id: u64) {
        self.record(
            root_of(region),
            EventKind::FlowBegin {
                name: name.to_string(),
                id,
            },
        );
        self.metrics.add_counter(
            &format!("{}/comm.flow_out.{name}", metrics_root(region)),
            1.0,
        );
    }

    fn flow_end(&self, name: &str, region: &str, id: u64) {
        self.record(
            root_of(region),
            EventKind::FlowEnd {
                name: name.to_string(),
                id,
            },
        );
        self.metrics.add_counter(
            &format!("{}/comm.flow_in.{name}", metrics_root(region)),
            1.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lkk_kokkos::profile;

    /// Collector tests register global subscribers; serialize them so
    /// concurrent tests in this binary don't pollute each other's lanes
    /// beyond what the assertions tolerate.
    pub(crate) static COLLECTOR_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lane_named(c: &TraceCollector, name: &str) -> Option<Arc<Lane>> {
        c.sorted_lanes()
            .into_iter()
            .find(|l| l.data.lock().unwrap().name == name)
    }

    #[test]
    fn events_land_on_the_emitting_thread_lane() {
        let _serial = COLLECTOR_TEST_LOCK.lock().unwrap();
        let c = Arc::new(TraceCollector::deterministic(GpuArch::h100()));
        let id = profile::register_subscriber(c.clone());
        {
            let _r = profile::begin_region("collector-test");
            profile::note_kernel_launch("k-collector", 10);
            profile::note_instant("grew", 3.0);
            profile::note_counter("owned", 42.0);
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _r = profile::begin_region("rank7");
                profile::note_instant("halo_bytes", 128.0);
            });
        });
        profile::unregister_subscriber(id);

        // This thread's lane is named "host" (root region is not a rank
        // marker) and holds the nested event sequence with strictly
        // increasing ticks.
        let host = lane_named(&c, "host").expect("host lane");
        {
            let d = host.data.lock().unwrap();
            let ticks: Vec<f64> = d.events.iter().map(|e| e.ts_det).collect();
            assert!(
                ticks.windows(2).all(|w| w[0] < w[1]),
                "ticks not increasing"
            );
            assert!(d
                .events
                .iter()
                .any(|e| matches!(&e.kind, EventKind::Begin(n) if n == "collector-test")));
            assert!(d.events.iter().any(
                |e| matches!(&e.kind, EventKind::Launch { name, .. } if name == "k-collector")
            ));
        }
        // The worker thread's outermost region named its lane.
        let rank = lane_named(&c, "rank7").expect("rank lane");
        assert_eq!(rank.data.lock().unwrap().events.len(), 3); // B, i, E

        // Metrics: instants summed as counters, counter samples as
        // gauges + histograms.
        let dump = c.metrics().to_canonical_json();
        assert!(dump.contains("\"collector-test/grew\": 3"), "{dump}");
        assert!(dump.contains("\"rank7/halo_bytes\": 128"), "{dump}");
        assert!(dump.contains("\"collector-test/owned\": 42"), "{dump}");
    }

    #[test]
    fn device_lane_is_serialized_by_the_cursor() {
        let _serial = COLLECTOR_TEST_LOCK.lock().unwrap();
        let c = Arc::new(TraceCollector::deterministic(GpuArch::h100()));
        let id = profile::register_subscriber(c.clone());
        let log = profile::KernelLog::new();
        {
            let _r = profile::begin_region("dev-cursor-test");
            for _ in 0..3 {
                let mut s = KernelStats::new("k-dev");
                s.work_items = 1000.0;
                s.flops = 1e6;
                s.dram_bytes = 1e5;
                log.push(s);
            }
        }
        profile::unregister_subscriber(id);
        let host = lane_named(&c, "host").expect("host lane");
        let d = host.data.lock().unwrap();
        assert_eq!(d.device.len(), 3);
        for w in d.device.windows(2) {
            assert!(w[0].dur_us > 0.0);
            // Next start is at or after the previous end.
            assert!(w[1].ts_det >= w[0].ts_det + w[0].dur_us - 1e-9);
        }
    }

    #[test]
    fn flows_land_on_lanes_and_count_in_metrics() {
        let _serial = COLLECTOR_TEST_LOCK.lock().unwrap();
        let c = Arc::new(TraceCollector::deterministic(GpuArch::h100()));
        let id = profile::register_subscriber(c.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                let _r = profile::begin_region("rank0");
                profile::note_flow_begin("forward", 77);
            });
        });
        std::thread::scope(|s| {
            s.spawn(|| {
                let _r = profile::begin_region("rank1");
                profile::note_flow_end("forward", 77);
            });
        });
        profile::unregister_subscriber(id);
        let sender = lane_named(&c, "rank0").expect("sender lane");
        assert!(sender.data.lock().unwrap().events.iter().any(
            |e| matches!(&e.kind, EventKind::FlowBegin { name, id } if name == "forward" && *id == 77)
        ));
        let receiver = lane_named(&c, "rank1").expect("receiver lane");
        assert!(receiver.data.lock().unwrap().events.iter().any(
            |e| matches!(&e.kind, EventKind::FlowEnd { name, id } if name == "forward" && *id == 77)
        ));
        let m = c.metrics();
        assert_eq!(m.counter("rank0/comm.flow_out.forward"), Some(1.0));
        assert_eq!(m.counter("rank1/comm.flow_in.forward"), Some(1.0));
    }

    #[test]
    fn rank_root_detection() {
        assert!(is_rank_root("rank0"));
        assert!(is_rank_root("rank12"));
        assert!(!is_rank_root("rank"));
        assert!(!is_rank_root("ranks4"));
        assert!(!is_rank_root("step"));
        assert!(!is_rank_root(""));
        assert_eq!(leaf_of("step/pair/comm"), "comm");
        assert_eq!(root_of("step/pair/comm"), "step");
        assert_eq!(metrics_root(""), "host");
    }
}
