//! Facade crate re-exporting the full `lammps-kk` stack.
pub use lkk_core as core;
pub use lkk_gpusim as gpusim;
pub use lkk_kokkos as kokkos;
pub use lkk_machine as machine;
pub use lkk_reaxff as reaxff;
pub use lkk_snap as snap;
pub use lkk_trace as trace;
