//! Facade crate re-exporting the full `lammps-kk` stack.
pub use lkk_core as core;
pub use lkk_gpusim as gpusim;
pub use lkk_kokkos as kokkos;
pub use lkk_machine as machine;
pub use lkk_reaxff as reaxff;
pub use lkk_snap as snap;
pub use lkk_trace as trace;

/// One-stop import for examples and downstream users: the `lkk-core`
/// prelude (atoms, lattices, pair styles, the [`core::sim::SimulationBuilder`]
/// unified driver with its `CommSpec`/`RunSpec` surface) plus the
/// commonly paired pieces from the sibling crates — the machine-level
/// potentials, the cost-model architectures, and the trace collector.
pub mod prelude {
    pub use lkk_core::prelude::*;
    pub use lkk_gpusim::GpuArch;
    pub use lkk_reaxff::{PairReaxff, ReaxParams};
    pub use lkk_snap::{PairSnap, SnapParams};
    pub use lkk_trace::TraceCollector;
}
